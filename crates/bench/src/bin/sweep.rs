//! `sweep` — run arbitrary config-grid sweeps on the `lassi-harness`
//! experiment service, with a persistent scenario cache and a JSON artifact
//! per run.
//!
//! ```text
//! sweep run  [--models L] [--apps L] [--directions L|both]
//!            [--max-self-corrections L] [--timing-runs L] [--seed N]
//!            [--run-id ID] [--artifacts DIR] [--no-cache] [--workers N]
//!            [--timings] [--diag-summary] [--engine bytecode|reference]
//! sweep full [--max-self-corrections L] [--timing-runs L] [--seed N]
//!            [--artifacts DIR] [--workers N] [--timings] [--diag-summary]
//!            [--engine bytecode|reference]
//! sweep smoke [--artifacts DIR] [--workers N] [--diag-summary]
//!             [--engine bytecode|reference]
//! sweep verify <run-dir>
//! sweep list [--artifacts DIR]
//! sweep delete <run-id> [--artifacts DIR]
//! ```
//!
//! The pre-subcommand flag spellings (`--smoke`, `--full`, `--list`,
//! `--verify <dir>`, `--delete <id>`, and bare `sweep` for `sweep run`)
//! still work but print a deprecation note to stderr; stdout is unchanged
//! so existing greps keep passing.
//!
//! Lists are comma-separated. Every (direction, max_self_corrections,
//! timing_runs) cell of the grid becomes one record set in the artifact.
//!
//! `--timings` (on `run` and `full`) prints a per-stage pipeline timing
//! table — parse / sema / compile / llm / execute / similarity — from the
//! process-wide `lassi-obs` metrics registry after the sweep, followed by
//! the compiled-program and execution-report cache counters and the execute
//! stage's share of instrumented stage time; `full` also embeds the same
//! breakdown as `stage_breakdown` in `BENCH_fullgrid.json`.
//!
//! `--diag-summary` (on `run`, `full` and `smoke`) prints the sweep's
//! structured findings aggregated per stable diagnostic code after the
//! records are written: a grep-stable `diagnostics:` headline (total
//! findings, scenarios that produced any, repair rounds spent) followed by
//! one row per code with its severity, finding count, scenario count and
//! the deepest self-correction round it appeared in. The table is computed
//! from the same records the artifact stores, so it always agrees with
//! `diagnostics.json`.
//!
//! `--engine` picks the execution engine for every compile-and-run step:
//! `bytecode` (the default — each checked program lowers to register
//! bytecode once, cached process-wide, and runs on the dispatch-loop VM) or
//! `reference` (the original tree-walking interpreter, kept for
//! differential comparison). Both produce bit-identical reports; the
//! scenario-cache key includes the engine, so sweeps under different
//! engines never share cache entries.
//!
//! `--full` runs the paper's complete Table-IV grid — every application ×
//! every model × both directions (10 × 4 × 2 = 80 scenarios per config
//! cell) — twice through the worker pool and the scenario cache (cold, then
//! warm), saves the artifact as `run-fullgrid/` (replacing any previous
//! one), verifies it round-trips, and emits a `BENCH_fullgrid.json`
//! perf-trajectory artifact (cold/warm wall clock, scenarios/sec, cache hit
//! rates). The grid dimensions are fixed by definition; narrowing flags
//! (`--models`, `--apps`, `--directions`) are rejected.
//!
//! `--smoke` is the self-checking CI entry point over a tiny 2-application
//! × 1-model grid. The cold/warm measurement runs against a *throwaway*
//! cache directory so "cold" genuinely means 0% hits and "warm" 100% — a
//! pre-warmed shared cache must not be able to fake the cold numbers (it
//! once did: the committed `cold_cache_hit_rate` read 1.0). A third,
//! separate pass then goes through the persistent shared cache at
//! `<artifacts>/cache`; because that cache survives the process, a *second*
//! `sweep --smoke` invocation reports 100% hits on this shared pass — CI
//! asserts exactly that. The artifact is written from the shared pass and
//! verified to round-trip (including a byte-identical table re-rendering),
//! and the fresh-cache numbers become `BENCH_harness.json`.
//!
//! `--verify <run-dir>` reloads a saved artifact with the round-trip loader,
//! recomputes every summary from the records and compares it against the
//! stored one.
//!
//! `--list` prints the run ids present in the artifact store, one per line.
//!
//! `--delete <run-id>` removes one run directory from the artifact store
//! (the first piece of artifact GC — the same operation the server exposes
//! as `DELETE /v1/runs/{id}`). The scenario cache is never touched.

use std::time::Instant;

use lassi_core::{direction_table, scenario_outcomes, Direction, ExecEngine, PipelineConfig};
use lassi_harness::codec::record_to_json;
use lassi_harness::{
    CacheSnapshot, GridCell, Harness, Job, JobOutput, Json, RunArtifact, SweepGrid,
};
use lassi_hecbench::{application, applications, Application};
use lassi_llm::{all_models, model_by_name, ModelSpec};
use lassi_metrics::AggregateStats;

/// What the invocation asks for — one subcommand (or its legacy-flag
/// spelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `sweep run` (also bare `sweep`): an arbitrary config-grid sweep.
    Run,
    /// `sweep full`: the paper's complete Table-IV grid, cold then warm.
    Full,
    /// `sweep smoke`: the self-checking CI smoke over a tiny grid.
    Smoke,
    /// `sweep list`: run ids in the artifact store.
    List,
    /// `sweep delete <run-id>`: remove one run directory.
    Delete,
    /// `sweep verify <run-dir>`: round-trip-check a saved artifact.
    Verify,
}

impl Mode {
    fn from_word(word: &str) -> Option<Mode> {
        match word {
            "run" => Some(Mode::Run),
            "full" => Some(Mode::Full),
            "smoke" => Some(Mode::Smoke),
            "list" => Some(Mode::List),
            "delete" => Some(Mode::Delete),
            "verify" => Some(Mode::Verify),
            _ => None,
        }
    }

    fn word(self) -> &'static str {
        match self {
            Mode::Run => "run",
            Mode::Full => "full",
            Mode::Smoke => "smoke",
            Mode::List => "list",
            Mode::Delete => "delete",
            Mode::Verify => "verify",
        }
    }

    /// Does this subcommand take a positional operand, and what is it?
    fn operand_name(self) -> Option<&'static str> {
        match self {
            Mode::Delete => Some("<run-id>"),
            Mode::Verify => Some("<run-dir>"),
            _ => None,
        }
    }
}

struct SweepArgs {
    common: lassi_bench::CommonArgs,
    mode: Mode,
    /// The positional operand for `delete` / `verify`.
    operand: Option<String>,
    models: Vec<ModelSpec>,
    apps: Vec<Application>,
    directions: Vec<Direction>,
    /// True once --models/--apps/--directions narrowed the product
    /// (incompatible with --full, which is the full product by definition).
    narrowed: bool,
    max_self_corrections: Vec<u32>,
    timing_runs: Vec<u32>,
    seed: Option<u64>,
    run_id: Option<String>,
    /// Print the per-stage pipeline timing table after the sweep.
    timings: bool,
    /// Print the per-code structured-findings table after the sweep.
    diag_summary: bool,
    /// Execution engine override (`--engine`); `None` keeps the
    /// `PipelineConfig` default (bytecode, or `LASSI_ENGINE` if set).
    engine: Option<ExecEngine>,
}

fn parse_list<T, E: std::fmt::Display>(
    raw: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).map_err(|e| format!("bad {what} `{s}`: {e}")))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("empty {what} list"));
    }
    Ok(items)
}

/// Record a mode request, rejecting contradictory ones (`sweep smoke --full`).
fn set_mode(current: &mut Option<Mode>, requested: Mode) -> Result<(), String> {
    match current {
        Some(existing) if *existing != requested => Err(format!(
            "conflicting modes: `{}` and `{}`",
            existing.word(),
            requested.word()
        )),
        _ => {
            *current = Some(requested);
            Ok(())
        }
    }
}

/// Stderr note for the pre-subcommand flag spellings. Stdout is untouched
/// so pipelines grepping pass lines keep working.
fn deprecation_note(old: &str, new: &str) {
    eprintln!(
        "sweep: note: `{old}` is deprecated; use `sweep {new}` (the old spelling still works)"
    );
}

fn parse_args() -> Result<SweepArgs, String> {
    let common = lassi_bench::parse_common_args(std::env::args().skip(1))?;
    let mut args = SweepArgs {
        common: common.clone(),
        mode: Mode::Run,
        operand: None,
        models: all_models(),
        apps: applications(),
        directions: Direction::both().to_vec(),
        narrowed: false,
        max_self_corrections: vec![PipelineConfig::default().max_self_corrections],
        timing_runs: vec![PipelineConfig::default().timing_runs],
        seed: None,
        run_id: None,
        timings: false,
        diag_summary: false,
        engine: None,
    };
    let mut mode: Option<Mode> = None;
    let mut rest = common.rest.into_iter().peekable();
    // The subcommand word leads; everything after it is flags (plus the
    // operand for `delete` / `verify`).
    if let Some(word) = rest.peek().and_then(|first| Mode::from_word(first)) {
        mode = Some(word);
        rest.next();
    }
    let mut iter = rest;
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--smoke" => {
                deprecation_note("--smoke", "smoke");
                set_mode(&mut mode, Mode::Smoke)?;
            }
            "--full" => {
                deprecation_note("--full", "full");
                set_mode(&mut mode, Mode::Full)?;
            }
            "--list" => {
                deprecation_note("--list", "list");
                set_mode(&mut mode, Mode::List)?;
            }
            "--verify" => {
                deprecation_note("--verify <run-dir>", "verify <run-dir>");
                set_mode(&mut mode, Mode::Verify)?;
                args.operand = Some(value("--verify")?);
            }
            "--delete" => {
                deprecation_note("--delete <run-id>", "delete <run-id>");
                set_mode(&mut mode, Mode::Delete)?;
                args.operand = Some(value("--delete")?);
            }
            "--models" => {
                args.models = parse_list(&value("--models")?, "model", |s| {
                    model_by_name(s).ok_or("unknown model")
                })?;
                args.narrowed = true;
            }
            "--apps" => {
                args.apps = parse_list(&value("--apps")?, "application", |s| {
                    application(s).ok_or("unknown application")
                })?;
                args.narrowed = true;
            }
            "--directions" => {
                let raw = value("--directions")?;
                if raw == "both" {
                    args.directions = Direction::both().to_vec();
                } else {
                    args.directions = parse_list(&raw, "direction", |s| {
                        Direction::from_slug(s).ok_or("use omp-to-cuda / cuda-to-omp / both")
                    })?;
                }
                args.narrowed = true;
            }
            "--max-self-corrections" | "--msc" => {
                args.max_self_corrections =
                    parse_list(&value("--max-self-corrections")?, "cap", str::parse::<u32>)?;
            }
            "--timing-runs" => {
                args.timing_runs =
                    parse_list(&value("--timing-runs")?, "timing-runs", str::parse::<u32>)?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                args.seed = Some(raw.parse().map_err(|_| format!("bad seed `{raw}`"))?);
            }
            "--run-id" => args.run_id = Some(value("--run-id")?),
            "--timings" => args.timings = true,
            "--diag-summary" => args.diag_summary = true,
            "--engine" => {
                let raw = value("--engine")?;
                args.engine = Some(
                    ExecEngine::parse(&raw)
                        .ok_or(format!("bad engine `{raw}` (use bytecode / reference)"))?,
                );
            }
            other if !other.starts_with('-') => {
                // Positional operand — only `delete` / `verify` take one.
                let takes_operand =
                    matches!(mode, Some(Mode::Delete | Mode::Verify)) && args.operand.is_none();
                if takes_operand {
                    args.operand = Some(other.to_string());
                } else {
                    return Err(format!(
                        "unexpected argument `{other}` (subcommands: run, full, \
                         smoke, list, delete <run-id>, verify <run-dir>)"
                    ));
                }
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (see --help in the docs)"
                ))
            }
        }
    }
    if mode.is_none() {
        deprecation_note("bare `sweep`", "run");
    }
    args.mode = mode.unwrap_or(Mode::Run);
    match args.mode.operand_name() {
        Some(name) if args.operand.is_none() => {
            return Err(format!("`sweep {}` needs {name}", args.mode.word()))
        }
        None if args.operand.is_some() => {
            return Err(format!(
                "`sweep {}` takes no positional argument",
                args.mode.word()
            ))
        }
        _ => {}
    }
    Ok(args)
}

/// One harness pass over the grid's jobs; returns submission-ordered outputs,
/// wall-clock and the pass's cache-counter delta.
fn run_pass(harness: &Harness, jobs: Vec<Job>) -> (Vec<JobOutput>, f64, CacheSnapshot) {
    let before = harness.cache_snapshot();
    let started = Instant::now();
    let outputs = harness.submit(jobs).collect_outputs();
    let wall = started.elapsed().as_secs_f64();
    (outputs, wall, harness.cache_snapshot().since(before))
}

fn pass_line(label: &str, outputs: &[JobOutput], wall: f64, delta: CacheSnapshot) -> String {
    format!(
        "{label} pass: {} scenarios, wall {:.3}s, cache hits {}/{} ({:.1}%)",
        outputs.len(),
        wall,
        delta.hits,
        delta.hits + delta.misses,
        delta.hit_rate() * 100.0,
    )
}

/// Write one run artifact via the shared [`SweepGrid::write_artifact`]
/// writer (the same one the HTTP service uses, so artifacts are
/// interchangeable). Returns the per-cell records for later verification.
fn write_artifact(
    args: &SweepArgs,
    grid: &SweepGrid,
    run_id: &str,
    replace: bool,
    jobs: &[Job],
    outputs: &[JobOutput],
    snapshot: CacheSnapshot,
) -> Result<Vec<(GridCell, Vec<lassi_core::TranslationRecord>)>, String> {
    let store = lassi_bench::artifact_store(&args.common);
    // No extra lifecycle events from the CLI — `write_artifact` itself
    // synthesises the one-job-span-per-scenario timeline in `trace.jsonl`.
    let per_cell = grid
        .write_artifact(&store, run_id, replace, jobs, outputs, snapshot, &[])
        .map_err(|e| e.to_string())?;
    eprintln!("artifact saved to {}", store.run_dir(run_id).display());
    Ok(per_cell)
}

/// Reload an artifact and check every record set round-trips: records parse,
/// summaries match a recomputation, and the manifest lists every set.
fn verify_artifact(dir: &std::path::Path) -> Result<String, String> {
    let artifact = RunArtifact::load(dir).map_err(|e| e.to_string())?;
    let mut records_total = 0;
    let mut flagged_records = 0usize;
    let mut record_findings = 0usize;
    for set in &artifact.manifest.record_sets {
        let records = artifact.records(set).map_err(|e| e.to_string())?;
        let stored = artifact.summary(set).map_err(|e| e.to_string())?;
        let recomputed = AggregateStats::from_outcomes(&scenario_outcomes(&records));
        if stored != recomputed {
            return Err(format!(
                "summary-{set}.json does not match its records: stored {stored:?}, \
                 recomputed {recomputed:?}"
            ));
        }
        for record in &records {
            flagged_records += usize::from(!record.diagnostics.is_empty());
            record_findings += record
                .diagnostics
                .iter()
                .map(|attempt| attempt.diagnostics.len())
                .sum::<usize>();
        }
        records_total += records.len();
    }
    if records_total != artifact.manifest.scenarios {
        return Err(format!(
            "manifest claims {} scenarios but record sets hold {records_total}",
            artifact.manifest.scenarios
        ));
    }
    verify_diagnostics_document(dir, flagged_records, record_findings)?;
    Ok(format!(
        "artifact OK: {} record sets, {records_total} records, schema v{}",
        artifact.manifest.record_sets.len(),
        artifact.manifest.schema_version
    ))
}

/// Cross-check `diagnostics.json` against the records it was derived from:
/// same schema version, one scenario entry per record with a non-empty
/// history, same total finding count. The document is optional — the table
/// binaries write record sets without one — but when present it must agree.
fn verify_diagnostics_document(
    dir: &std::path::Path,
    flagged_records: usize,
    record_findings: usize,
) -> Result<(), String> {
    let path = dir.join(lassi_harness::DIAGNOSTICS_FILE);
    if !path.is_file() {
        return Ok(());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    let doc = lassi_harness::json::parse(&text)
        .map_err(|e| format!("diagnostics.json does not parse: {e}"))?;
    let version = doc.get("v").and_then(|v| v.as_str());
    if version != Some(lassi_lang::diag::codec::VERSION) {
        return Err(format!(
            "diagnostics.json schema is {version:?} (expected `{}`)",
            lassi_lang::diag::codec::VERSION
        ));
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(|v| v.as_array())
        .ok_or("diagnostics.json has no `scenarios` array")?;
    let doc_findings: usize = scenarios
        .iter()
        .map(|scenario| {
            scenario
                .get("attempts")
                .and_then(|v| v.as_array())
                .map(|attempts| {
                    attempts
                        .iter()
                        .filter_map(|a| a.get("diagnostics").and_then(|v| v.as_array()))
                        .map(<[Json]>::len)
                        .sum()
                })
                .unwrap_or(0)
        })
        .sum();
    if scenarios.len() != flagged_records || doc_findings != record_findings {
        return Err(format!(
            "diagnostics.json disagrees with the records: document lists \
             {} scenarios / {} findings, records carry {} / {}",
            scenarios.len(),
            doc_findings,
            flagged_records,
            record_findings
        ));
    }
    Ok(())
}

/// One cold pass then one warm pass over the grid's jobs, with the shared
/// gate both self-checking modes enforce: the warm pass must be 100% cache
/// hits and must reproduce the cold records exactly. "Exactly" is judged on
/// the serialized (codec) form — derived `PartialEq` would declare a
/// NaN-carrying record unequal to itself, failing precisely the degenerate
/// records the artifact store is built to tolerate.
#[allow(clippy::type_complexity)]
fn cold_then_warm(
    harness: &Harness,
    grid: &SweepGrid,
) -> Result<
    (
        (Vec<JobOutput>, f64, CacheSnapshot),
        (Vec<JobOutput>, f64, CacheSnapshot),
    ),
    String,
> {
    let (cold_out, cold_wall, cold_delta) = run_pass(harness, grid.jobs());
    println!("{}", pass_line("cold", &cold_out, cold_wall, cold_delta));
    let (warm_out, warm_wall, warm_delta) = run_pass(harness, grid.jobs());
    println!("{}", pass_line("warm", &warm_out, warm_wall, warm_delta));

    if warm_delta.hits as usize != warm_out.len() || warm_delta.misses != 0 {
        return Err(format!(
            "warm pass must be 100% cache hits, got {}/{}",
            warm_delta.hits,
            warm_delta.hits + warm_delta.misses
        ));
    }
    for (cold, warm) in cold_out.iter().zip(&warm_out) {
        let cold_text = record_to_json(&cold.record).to_compact();
        let warm_text = record_to_json(&warm.record).to_compact();
        if cold_text != warm_text {
            return Err(format!(
                "cache returned a different record for {}",
                cold.record.application
            ));
        }
    }
    Ok((
        (cold_out, cold_wall, cold_delta),
        (warm_out, warm_wall, warm_delta),
    ))
}

/// Per-stage pipeline timings accumulated in the process-wide metrics
/// registry while this process ran scenarios: `(stage, samples, total
/// seconds)` in pipeline order. Cache-served scenarios never enter the
/// pipeline, so only genuinely-executed work shows up here.
fn stage_rows() -> Vec<(&'static str, u64, f64)> {
    let registry = lassi_obs::global();
    lassi_core::STAGE_NAMES
        .iter()
        .filter_map(|stage| {
            registry
                .histogram_snapshot("lassi_stage_seconds", &[("stage", stage)])
                .map(|snapshot| (*stage, snapshot.count, snapshot.sum))
        })
        .collect()
}

/// The `--timings` table: where pipeline wall-clock went, stage by stage,
/// followed by the compiled-program and execution-report cache counters and
/// the execute stage's share of instrumented stage time (CI greps the share
/// line to assert the bytecode engine keeps execution off the critical
/// path).
fn print_stage_table() {
    let rows = stage_rows();
    if rows.is_empty() {
        println!("stage timings: none recorded (all scenarios cache-served?)");
        return;
    }
    println!(
        "{:<12} {:>9} {:>11} {:>10}",
        "stage", "samples", "total s", "mean ms"
    );
    let mut stage_total = 0.0;
    let mut execute_total = 0.0;
    for (stage, count, sum) in rows {
        let mean_ms = if count > 0 {
            sum / count as f64 * 1e3
        } else {
            0.0
        };
        println!("{stage:<12} {count:>9} {sum:>11.3} {mean_ms:>10.3}");
        stage_total += sum;
        if stage == "execute" {
            execute_total = sum;
        }
    }
    let programs = lassi_core::progcache::stats();
    println!(
        "program cache: {} hits / {} misses ({:.1}% hit rate), {} entries, ~{} bytes",
        programs.hits,
        programs.misses,
        programs.hit_rate() * 100.0,
        programs.entries,
        programs.approx_bytes
    );
    let reports = lassi_core::progcache::report_stats();
    println!(
        "report cache: {} hits / {} misses ({:.1}% hit rate), {} entries, ~{} bytes",
        reports.hits,
        reports.misses,
        reports.hit_rate() * 100.0,
        reports.entries,
        reports.approx_bytes
    );
    let execute_share = if stage_total > 0.0 {
        execute_total / stage_total * 100.0
    } else {
        0.0
    };
    println!("execute share of stage time: {execute_share:.1}%");
}

/// One row of the `--diag-summary` table: a stable diagnostic code with its
/// severity label, total findings, scenarios it appeared in, and the
/// deepest self-correction round that produced it.
struct DiagRow {
    code: String,
    severity: &'static str,
    count: usize,
    scenarios: usize,
    max_round: u32,
}

/// The `--diag-summary` table: every structured finding in the sweep's
/// records, aggregated per stable code. Computed from the same records the
/// artifact stores, so the numbers always agree with `diagnostics.json`;
/// the headline is grep-stable (`^diagnostics: `) for CI.
fn print_diag_summary(per_cell: &[(GridCell, Vec<lassi_core::TranslationRecord>)]) {
    let mut findings = 0usize;
    let mut flagged_scenarios = 0usize;
    let mut repair_rounds = 0u64;
    let mut rows: Vec<DiagRow> = Vec::new();
    for (_, records) in per_cell {
        for record in records {
            repair_rounds += record.self_corrections as u64;
            let mut codes_here: Vec<&str> = Vec::new();
            for attempt in &record.diagnostics {
                for diag in &attempt.diagnostics {
                    findings += 1;
                    let code = diag.code_str();
                    let first_in_scenario = !codes_here.contains(&code);
                    match rows.iter_mut().find(|row| row.code == code) {
                        Some(row) => {
                            row.count += 1;
                            row.scenarios += usize::from(first_in_scenario);
                            row.max_round = row.max_round.max(attempt.round);
                        }
                        None => rows.push(DiagRow {
                            code: code.to_string(),
                            severity: diag.severity.label(),
                            count: 1,
                            scenarios: 1,
                            max_round: attempt.round,
                        }),
                    }
                    if first_in_scenario {
                        codes_here.push(code);
                    }
                }
            }
            if !codes_here.is_empty() {
                flagged_scenarios += 1;
            }
        }
    }
    println!(
        "diagnostics: {findings} findings across {flagged_scenarios} \
         scenarios, {repair_rounds} repair rounds"
    );
    if rows.is_empty() {
        return;
    }
    // Busiest codes first; ties break on the code so reruns are
    // byte-identical.
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.code.cmp(&b.code)));
    println!(
        "{:<28} {:<8} {:>7} {:>10} {:>10}",
        "code", "severity", "count", "scenarios", "max round"
    );
    for row in rows {
        println!(
            "{:<28} {:<8} {:>7} {:>10} {:>10}",
            row.code, row.severity, row.count, row.scenarios, row.max_round
        );
    }
}

/// The `stage_breakdown` object of `BENCH_fullgrid.json`: per-stage sample
/// counts and total seconds, from the same registry as `--timings`.
fn stage_breakdown() -> Json {
    Json::Object(
        stage_rows()
            .into_iter()
            .map(|(stage, count, sum)| {
                (
                    stage.to_string(),
                    Json::Object(vec![
                        ("samples".into(), Json::uint(count)),
                        ("total_seconds".into(), Json::Float(sum)),
                    ]),
                )
            })
            .collect(),
    )
}

/// The `program_cache` / `report_cache` objects of `BENCH_fullgrid.json`:
/// counters from the same process-wide caches as `--timings`.
fn cache_counters_json(s: lassi_core::ProgramCacheStats) -> Json {
    Json::Object(vec![
        ("hits".into(), Json::uint(s.hits)),
        ("misses".into(), Json::uint(s.misses)),
        ("hit_rate".into(), Json::Float(s.hit_rate())),
        ("entries".into(), Json::uint(s.entries)),
        ("approx_bytes".into(), Json::uint(s.approx_bytes)),
    ])
}

/// Throughput of one pass (0.0 for a degenerate zero wall-clock) — the one
/// definition shared by the trajectory artifacts and the console lines.
fn scenarios_per_second(scenarios: usize, wall: f64) -> f64 {
    if wall > 0.0 {
        scenarios as f64 / wall
    } else {
        0.0
    }
}

/// Write a `BENCH_*.json` perf-trajectory artifact: identity fields, any
/// bench-specific extras, then the shared cold/warm wall-clock, throughput,
/// speedup and cache-hit-rate tail.
fn write_trajectory(
    path: &str,
    bench: &str,
    extra: Vec<(String, Json)>,
    scenarios: usize,
    workers: usize,
    cold: (f64, CacheSnapshot),
    warm: (f64, CacheSnapshot),
) -> Result<(), String> {
    let per_second = |wall: f64| scenarios_per_second(scenarios, wall);
    let speedup = if warm.0 > 0.0 { cold.0 / warm.0 } else { 0.0 };
    let mut fields = vec![
        ("bench".into(), Json::Str(bench.into())),
        ("schema_version".into(), Json::Int(1)),
        ("created_unix".into(), Json::uint(lassi_bench::unix_now())),
    ];
    fields.extend(extra);
    fields.extend([
        ("scenarios".into(), Json::Int(scenarios as i128)),
        ("workers".into(), Json::Int(workers as i128)),
        ("cold_wall_seconds".into(), Json::Float(cold.0)),
        ("warm_wall_seconds".into(), Json::Float(warm.0)),
        (
            "cold_scenarios_per_second".into(),
            Json::Float(per_second(cold.0)),
        ),
        (
            "warm_scenarios_per_second".into(),
            Json::Float(per_second(warm.0)),
        ),
        ("warm_speedup".into(), Json::Float(speedup)),
        ("cold_cache_hit_rate".into(), Json::Float(cold.1.hit_rate())),
        ("warm_cache_hit_rate".into(), Json::Float(warm.1.hit_rate())),
    ]);
    let mut text = Json::Object(fields).to_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn smoke(args: &SweepArgs) -> Result<(), String> {
    let mut base = PipelineConfig {
        timing_runs: 1,
        ..PipelineConfig::default()
    };
    if let Some(engine) = args.engine {
        base.engine = engine;
    }
    let grid = SweepGrid::single(
        base,
        vec![model_by_name("GPT-4").expect("GPT-4 exists")],
        vec![
            application("layout").expect("layout exists"),
            application("entropy").expect("entropy exists"),
        ],
        vec![Direction::CudaToOmp],
    );
    let shared_harness = lassi_bench::build_harness(&args.common)?;
    if shared_harness.cache().is_none() {
        return Err("--smoke needs the scenario cache (drop --no-cache)".into());
    }
    let options = lassi_harness::HarnessOptions::default().with_workers(args.common.workers);
    let workers = options.workers;

    // Cold/warm measurement over a *throwaway* disk cache, so the cold pass
    // cannot be faked by a cache warmed in an earlier invocation: cold must
    // be 0% hits, warm 100%.
    let fresh_dir =
        std::env::temp_dir().join(format!("lassi-smoke-fresh-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let fresh_cache = lassi_harness::ScenarioCache::on_disk(&fresh_dir)
        .map_err(|e| format!("cannot create throwaway cache: {e}"))?;
    let fresh_harness = lassi_harness::Harness::new(options).with_cache(fresh_cache);
    let measured = cold_then_warm(&fresh_harness, &grid);
    // Quiesce the batched writer, then clean the throwaway cache up on the
    // error path too, before `?` bails.
    fresh_harness.flush_cache();
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let ((_, cold_wall, cold_delta), (warm_out, warm_wall, warm_delta)) = measured?;
    if cold_delta.hits != 0 {
        return Err(format!(
            "cold pass on a fresh cache must have 0 hits, got {}",
            cold_delta.hits
        ));
    }

    // A separate pass through the *persistent* shared cache under
    // <artifacts>/cache. It misses on the first invocation and must be 100%
    // hits on the second (CI asserts the `shared pass` line), and it is the
    // pass the artifact is written from.
    let (shared_out, shared_wall, shared_delta) = run_pass(&shared_harness, grid.jobs());
    println!(
        "{}",
        pass_line("shared", &shared_out, shared_wall, shared_delta)
    );
    // The disk writes behind the shared pass are batched; flush them now so
    // the next `sweep --smoke` *process* (CI's second invocation) finds
    // every entry on disk and reports the shared pass at 100% hits.
    shared_harness.flush_cache();

    let jobs = grid.jobs();
    let per_cell = write_artifact(
        args,
        &grid,
        "smoke",
        true,
        &jobs,
        &shared_out,
        shared_harness.cache_snapshot(),
    )?;

    // Round-trip check: reload the artifact and require the re-rendered
    // table to be byte-identical to the live rendering.
    let store = lassi_bench::artifact_store(&args.common);
    let run_dir = store.run_dir("smoke");
    println!("{}", verify_artifact(&run_dir)?);
    let artifact = RunArtifact::load(&run_dir).map_err(|e| e.to_string())?;
    for (cell, live_records) in &per_cell {
        let loaded = artifact.records(&cell.slug()).map_err(|e| e.to_string())?;
        if loaded != *live_records {
            return Err(format!(
                "record set {} changed across save/load",
                cell.slug()
            ));
        }
        let live_table = direction_table(cell.direction, live_records);
        let replayed_table = direction_table(cell.direction, &loaded);
        if live_table != replayed_table {
            return Err(format!(
                "replayed table for {} is not byte-identical",
                cell.slug()
            ));
        }
    }
    println!("replayed tables byte-identical to live rendering");

    if args.diag_summary {
        print_diag_summary(&per_cell);
    }

    write_trajectory(
        "BENCH_harness.json",
        "harness-smoke",
        Vec::new(),
        warm_out.len(),
        workers,
        (cold_wall, cold_delta),
        (warm_wall, warm_delta),
    )?;
    println!(
        "BENCH_harness.json written (cold {:.3}s vs warm {:.3}s)",
        cold_wall, warm_wall
    );
    Ok(())
}

fn full_sweep(args: &SweepArgs) -> Result<(), String> {
    let mut base = PipelineConfig::default();
    if let Some(seed) = args.seed {
        base.seed = seed;
    }
    if let Some(engine) = args.engine {
        base.engine = engine;
    }
    let grid = SweepGrid {
        base,
        models: args.models.clone(),
        apps: args.apps.clone(),
        directions: args.directions.clone(),
        max_self_corrections: args.max_self_corrections.clone(),
        timing_runs: args.timing_runs.clone(),
    };
    if grid.is_empty() {
        return Err("the sweep grid is empty".into());
    }
    let run_id = args
        .run_id
        .clone()
        .unwrap_or_else(|| format!("sweep-{}", lassi_bench::unix_now()));
    eprintln!(
        "sweeping {} scenarios over {} grid cells (run id: {run_id})",
        grid.len(),
        grid.cells().len()
    );

    let harness = lassi_bench::build_harness(&args.common)?;
    let jobs = grid.jobs();
    let (outputs, wall, delta) = run_pass(&harness, jobs.clone());
    println!("{}", pass_line("sweep", &outputs, wall, delta));
    // Publish the batched cache writes before the process exits, so a
    // follow-up invocation over an overlapping grid starts warm.
    harness.flush_cache();

    let per_cell = write_artifact(
        args,
        &grid,
        &run_id,
        false,
        &jobs,
        &outputs,
        harness.cache_snapshot(),
    )?;
    for (cell, records) in &per_cell {
        let stats = AggregateStats::from_outcomes(&scenario_outcomes(records));
        println!("\n=== {} ===\n{stats}", cell.slug());
    }
    if args.diag_summary {
        print_diag_summary(&per_cell);
    }
    if args.timings {
        print_stage_table();
    }
    Ok(())
}

/// The complete paper grid — every application × every model × both
/// directions — run cold then warm through the worker pool and the scenario
/// cache, with a `BENCH_fullgrid.json` perf-trajectory artifact.
fn full_grid(args: &SweepArgs) -> Result<(), String> {
    if args.narrowed {
        return Err(
            "--full runs the complete application × model × direction grid; \
             drop --models/--apps/--directions (use --max-self-corrections / \
             --timing-runs to sweep config cells)"
                .into(),
        );
    }
    if args.run_id.is_some() {
        return Err("--full always writes (and replaces) run-fullgrid/; drop \
             --run-id, or use the default sweep mode for custom run ids"
            .into());
    }
    let mut base = PipelineConfig::default();
    if let Some(seed) = args.seed {
        base.seed = seed;
    }
    if let Some(engine) = args.engine {
        base.engine = engine;
    }
    let grid = SweepGrid {
        base,
        models: all_models(),
        apps: applications(),
        directions: Direction::both().to_vec(),
        max_self_corrections: args.max_self_corrections.clone(),
        timing_runs: args.timing_runs.clone(),
    };
    let harness = lassi_bench::build_harness(&args.common)?;
    if harness.cache().is_none() {
        return Err("--full needs the scenario cache (drop --no-cache)".into());
    }
    let workers = lassi_harness::HarnessOptions::default()
        .with_workers(args.common.workers)
        .workers;
    eprintln!(
        "full grid: {} applications × {} models × {} directions × {} config \
         cells = {} scenarios on {workers} workers",
        grid.apps.len(),
        grid.models.len(),
        grid.directions.len(),
        grid.max_self_corrections.len() * grid.timing_runs.len(),
        grid.len(),
    );

    let ((cold_out, cold_wall, cold_delta), (_, warm_wall, warm_delta)) =
        cold_then_warm(&harness, &grid)?;
    // Flush the batched cache writes: CI's second `--full` invocation
    // asserts its cold pass is 100% disk-cache hits.
    harness.flush_cache();

    let jobs = grid.jobs();
    let per_cell = write_artifact(
        args,
        &grid,
        "fullgrid",
        true,
        &jobs,
        &cold_out,
        harness.cache_snapshot(),
    )?;
    let store = lassi_bench::artifact_store(&args.common);
    println!("{}", verify_artifact(&store.run_dir("fullgrid"))?);

    write_trajectory(
        "BENCH_fullgrid.json",
        "fullgrid-sweep",
        vec![
            ("applications".into(), Json::Int(grid.apps.len() as i128)),
            ("models".into(), Json::Int(grid.models.len() as i128)),
            (
                "directions".into(),
                Json::Int(grid.directions.len() as i128),
            ),
            (
                "config_cells".into(),
                Json::Int((grid.max_self_corrections.len() * grid.timing_runs.len()) as i128),
            ),
            // Where pipeline wall-clock went, stage by stage (the cold
            // pass; warm scenarios are cache-served and never enter the
            // pipeline).
            ("stage_breakdown".into(), stage_breakdown()),
            // Cache counters: 730 cold executions should compile each
            // distinct program exactly once (program_cache) and run it on
            // the VM exactly once (report_cache) — execution is
            // deterministic, so every repeat replays the first report.
            (
                "program_cache".into(),
                cache_counters_json(lassi_core::progcache::stats()),
            ),
            (
                "report_cache".into(),
                cache_counters_json(lassi_core::progcache::report_stats()),
            ),
        ],
        grid.len(),
        workers,
        (cold_wall, cold_delta),
        (warm_wall, warm_delta),
    )?;
    println!(
        "BENCH_fullgrid.json written (cold {:.3}s = {:.1} scenarios/s, \
         warm {:.3}s)",
        cold_wall,
        scenarios_per_second(grid.len(), cold_wall),
        warm_wall
    );
    for (cell, records) in &per_cell {
        let stats = AggregateStats::from_outcomes(&scenario_outcomes(records));
        println!("\n=== {} ===\n{stats}", cell.slug());
    }
    if args.diag_summary {
        print_diag_summary(&per_cell);
    }
    if args.timings {
        print_stage_table();
    }
    Ok(())
}

/// `sweep list`: the run ids in the artifact store, one per line on stdout.
fn list_runs(args: &SweepArgs) -> Result<(), String> {
    let store = lassi_bench::artifact_store(&args.common);
    let runs = store.list_runs().map_err(|e| e.to_string())?;
    eprintln!("{} run(s) in {}", runs.len(), store.root().display());
    for id in runs {
        println!("{id}");
    }
    Ok(())
}

/// `sweep delete <run-id>`: remove one run directory (artifact GC, CLI side).
fn delete_run(args: &SweepArgs, run_id: &str) -> Result<(), String> {
    let store = lassi_bench::artifact_store(&args.common);
    store
        .delete_run(run_id)
        .map_err(|e| format!("cannot delete run `{run_id}`: {e}"))?;
    println!("deleted {}", store.run_dir(run_id).display());
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep: {message}");
            std::process::exit(2);
        }
    };
    let operand = || args.operand.as_deref().expect("validated by parse_args");
    let result = match args.mode {
        Mode::Verify => {
            verify_artifact(std::path::Path::new(operand())).map(|report| println!("{report}"))
        }
        Mode::Delete => delete_run(&args, operand()),
        Mode::List => list_runs(&args),
        Mode::Smoke => smoke(&args),
        Mode::Full => full_grid(&args),
        Mode::Run => full_sweep(&args),
    };
    if let Err(message) = result {
        eprintln!("sweep: {message}");
        std::process::exit(1);
    }
}
