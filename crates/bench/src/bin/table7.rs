//! Regenerate Table VII: CUDA → OpenMP translation results for all ten
//! applications and all four models (40 pipeline scenarios).

use lassi_core::{direction_table, run_direction, Direction};

fn main() {
    let config = lassi_bench::default_config();
    let records = run_direction(Direction::CudaToOmp, &config);
    print!("{}", direction_table(Direction::CudaToOmp, &records));
}
