//! Regenerate Table VI: OpenMP → CUDA translation results for all ten
//! applications and all four models (40 pipeline scenarios), executed on the
//! `lassi-harness` worker pool with the persistent scenario cache.
//!
//! The run is saved to `artifacts/run-table6/`; `--replay <run-dir>`
//! re-renders a saved artifact byte-identically without running anything.
//! Other flags: `--artifacts <dir>`, `--no-cache`, `--workers <n>`.

use lassi_core::Direction;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lassi_bench::direction_table_bin(Direction::OmpToCuda, "table6", args) {
        Ok(table) => print!("{table}"),
        Err(message) => {
            eprintln!("table6: {message}");
            std::process::exit(2);
        }
    }
}
