//! Regenerate Table VI: OpenMP → CUDA translation results for all ten
//! applications and all four models (40 pipeline scenarios).

use lassi_core::{direction_table, run_direction, Direction};

fn main() {
    let config = lassi_bench::default_config();
    let records = run_direction(Direction::OmpToCuda, &config);
    print!("{}", direction_table(Direction::OmpToCuda, &records));
}
