//! Regenerate Table IV: reference runtimes of the ten HeCBench applications
//! in CUDA and OpenMP on the simulated A100 machine.
//!
//! The rows are saved to `artifacts/run-table4/table4.json`;
//! `--replay <run-dir>` re-renders a saved artifact byte-identically
//! without re-running. Also accepts `--artifacts <dir>`.

use lassi_core::{run_table4, table4_text, Table4Row};
use lassi_harness::{detect_git_commit, RunArtifact, RunManifest};

fn rows() -> Result<Vec<Table4Row>, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let common = lassi_bench::parse_common_args(args)?;
    if let Some(extra) = common.rest.first() {
        return Err(format!("unknown argument `{extra}`"));
    }

    if let Some(dir) = &common.replay {
        let artifact = RunArtifact::load(dir).map_err(|e| e.to_string())?;
        return artifact.table4().map_err(|e| e.to_string());
    }

    let config = lassi_bench::default_config();
    let rows = run_table4(&config);

    let store = lassi_bench::artifact_store(&common);
    let writer = store
        .create_or_replace_run("table4")
        .map_err(|e| e.to_string())?;
    let mut manifest = RunManifest::new("table4", config.seed);
    manifest.git_commit = detect_git_commit();
    manifest.created_unix = Some(lassi_bench::unix_now());
    manifest.timing_runs = vec![config.timing_runs];
    manifest.applications = rows.iter().map(|r| r.application.clone()).collect();
    manifest.scenarios = rows.len();
    writer
        .write_manifest(&manifest)
        .map_err(|e| e.to_string())?;
    writer.write_table4(&rows).map_err(|e| e.to_string())?;
    eprintln!(
        "artifact saved to {}; re-render with --replay {0}",
        writer.dir().display()
    );
    Ok(rows)
}

fn main() {
    match rows() {
        Ok(rows) => {
            println!(
                "Table IV: runtimes of selected HeCBench applications on the simulated A100\n"
            );
            print!("{}", table4_text(&rows));
        }
        Err(message) => {
            eprintln!("table4: {message}");
            std::process::exit(2);
        }
    }
}
