//! Regenerate Table IV: reference runtimes of the ten HeCBench applications
//! in CUDA and OpenMP on the simulated A100 machine.

use lassi_core::{run_table4, table4_text};

fn main() {
    let config = lassi_bench::default_config();
    let rows = run_table4(&config);
    println!("Table IV: runtimes of selected HeCBench applications on the simulated A100\n");
    print!("{}", table4_text(&rows));
}
