//! Reproduce the two §V-D case studies:
//!
//! 1. a translated `bsearch` that serializes the parallel region (the
//!    Codestral CUDA→OpenMP case, ~20x slower than the reference), and
//! 2. an `atomicCost` translation whose runtime differs strongly from the
//!    reference because the parallelization is restructured.

use lassi_hecbench::{application, run_application, run_source};
use lassi_lang::Dialect;
use lassi_llm::{Fault, FaultKind};

fn main() {
    let bsearch = application("bsearch").unwrap();
    let reference = run_application(&bsearch, Dialect::OmpLite).expect("reference bsearch");

    // The serialization fault the paper attributes to Codestral: the
    // translated code "only implements the default single thread".
    let fault = Fault {
        kind: FaultKind::SerializeParallelism,
        category: lassi_llm::faults::FaultCategory::Performance,
    };
    let serialized_source = fault.apply(bsearch.omp_source);
    let serialized = run_source(&serialized_source, Dialect::OmpLite).expect("serialized bsearch");

    println!("Case study 1: Codestral bsearch CUDA->OpenMP (serialized translation)");
    println!(
        "  reference OpenMP runtime : {:.6} s",
        reference.simulated_seconds
    );
    println!(
        "  serialized translation   : {:.6} s",
        serialized.simulated_seconds
    );
    println!(
        "  slowdown                 : {:.1}x (paper reports ~20x)\n",
        serialized.simulated_seconds / reference.simulated_seconds
    );
    assert_eq!(
        reference.stdout, serialized.stdout,
        "outputs must still match"
    );

    let atomic = application("atomicCost").unwrap();
    let cuda = run_application(&atomic, Dialect::CudaLite).expect("atomicCost CUDA");
    let omp = run_application(&atomic, Dialect::OmpLite).expect("atomicCost OpenMP");
    println!("Case study 2: atomicCost — restructured parallelization changes runtime");
    println!(
        "  CUDA reference           : {:.6} s",
        cuda.simulated_seconds
    );
    println!(
        "  OpenMP reference         : {:.6} s",
        omp.simulated_seconds
    );
    println!(
        "  ratio                    : {:.2}x (the paper's DeepSeek translation reached 66x by\n\
         \u{20}                            restructuring atomics; see EXPERIMENTS.md)",
        omp.simulated_seconds / cuda.simulated_seconds
    );
}
