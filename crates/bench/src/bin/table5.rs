//! Regenerate Table V: the four LLM configurations. `--json` emits the
//! model specifications (including the cache-identity fingerprint) as JSON
//! through the harness serializer instead of the text table.

use lassi_harness::Json;
use lassi_llm::all_models;

fn model_json() -> Json {
    Json::Array(
        all_models()
            .iter()
            .map(|m| {
                Json::Object(vec![
                    ("name".into(), Json::Str(m.name.into())),
                    ("parameters".into(), Json::Str(m.parameters.into())),
                    ("size_gb".into(), Json::opt_float(m.size_gb)),
                    ("quantization".into(), Json::Str(m.quantization.into())),
                    ("context_tokens".into(), Json::Int(m.context_tokens as i128)),
                    ("fingerprint".into(), Json::Str(m.fingerprint())),
                ])
            })
            .collect(),
    )
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        println!("{}", model_json().to_pretty());
        return;
    }
    println!("Table V: selected Large Language Models\n");
    println!(
        "{:<20} {:<12} {:<10} {:<14} {:>16}",
        "LLM", "Parameters", "Size (GB)", "Quantization", "Context (tokens)"
    );
    for m in all_models() {
        println!(
            "{:<20} {:<12} {:<10} {:<14} {:>16}",
            m.name,
            m.parameters,
            m.size_gb
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "API".to_string()),
            m.quantization,
            m.context_tokens
        );
    }
}
