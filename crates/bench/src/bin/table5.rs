//! Regenerate Table V: the four LLM configurations.

use lassi_llm::all_models;

fn main() {
    println!("Table V: selected Large Language Models\n");
    println!(
        "{:<20} {:<12} {:<10} {:<14} {:>16}",
        "LLM", "Parameters", "Size (GB)", "Quantization", "Context (tokens)"
    );
    for m in all_models() {
        println!(
            "{:<20} {:<12} {:<10} {:<14} {:>16}",
            m.name,
            m.parameters,
            m.size_gb
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "API".to_string()),
            m.quantization,
            m.context_tokens
        );
    }
}
