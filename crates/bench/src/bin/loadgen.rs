//! `loadgen` — drive a running `lassi-server` with N concurrent clients
//! over overlapping sweep grids, in a cold phase then a warm phase, and
//! record throughput and latency percentiles.
//!
//! ```text
//! loadgen --addr HOST:PORT [--clients N] [--requests R] [--artifacts DIR]
//!         [--smoke] [--shutdown] [--out PATH] [--run-prefix P]
//! ```
//!
//! Each client submits `R` sweeps per phase; client `c`'s `r`-th request
//! covers an *overlapping* two-application window of the benchmark list, so
//! concurrent clients contend for the same scenario-cache entries. The warm
//! phase resubmits the same grids (fresh run ids): every scenario must then
//! be served from the shared scenario cache.
//!
//! Every client holds **one keep-alive connection for the whole phase**
//! (the server speaks HTTP/1.1 keep-alive since the warm-path overhaul), so
//! the TCP handshake is paid once per client, not once per request. If the
//! server closes a reused connection **at a request boundary** (idle
//! timeout, request cap, drain — provable because no response byte
//! arrived), the client retries that request once on a fresh connection and
//! counts the retry; any other failure — a response timeout, a mid-response
//! error — is a hard, clearly-worded error, never a retry, because the
//! server may already be running the non-idempotent sweep. Each phase
//! reports `connections_opened` and requests-per-connection.
//!
//! `--smoke` is the self-checking CI mode. It asserts that
//!
//! * every response across both phases is 2xx,
//! * the warm phase adds **zero** cache misses and exactly
//!   `scenarios-per-phase` hits (verified via `GET /v1/cache/stats`
//!   before/after),
//! * each phase opened at most one connection per client (keep-alive is
//!   actually being honoured, not silently renegotiated),
//! * a fetched run manifest and record set are **byte-identical** to the
//!   files in the server's artifact store (requires `--artifacts` pointing
//!   at the same directory the server writes),
//! * `GET /v1/runs` lists every run id the load created, and
//!   `DELETE /v1/runs/{id}` removes one,
//!
//! and then writes the `BENCH_server.json` perf-trajectory artifact
//! (schema_version 2: cold/warm requests/sec, p50/p99 latency, connection
//! accounting, and the pre-keep-alive baseline for before/after).
//! `--shutdown` sends `POST /v1/shutdown` at the end so a scripted server
//! process exits.

use std::time::Instant;

use lassi_harness::Json;
use lassi_server::http;
use lassi_server::http::ClientConnection;

/// The committed warm-phase numbers from the PR 4 `BENCH_server.json`
/// (`Connection: close`, single-mutex cache, synchronous cache-disk
/// writes), kept in the artifact so before/after is one file.
const BASELINE_WARM_P50_MS: f64 = 6.767844;
const BASELINE_WARM_P99_MS: f64 = 11.774078;

struct LoadgenArgs {
    common: lassi_bench::CommonArgs,
    addr: String,
    clients: usize,
    requests: usize,
    smoke: bool,
    shutdown: bool,
    out: String,
    run_prefix: String,
}

fn parse_args() -> Result<LoadgenArgs, String> {
    let common = lassi_bench::parse_common_args(std::env::args().skip(1))?;
    let mut args = LoadgenArgs {
        common: common.clone(),
        addr: String::new(),
        clients: 4,
        requests: 2,
        smoke: false,
        shutdown: false,
        out: "BENCH_server.json".into(),
        run_prefix: "lg".into(),
    };
    let mut iter = common.rest.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                let raw = value("--clients")?;
                args.clients = raw
                    .parse()
                    .map_err(|_| format!("bad client count `{raw}`"))?;
            }
            "--requests" => {
                let raw = value("--requests")?;
                args.requests = raw
                    .parse()
                    .map_err(|_| format!("bad request count `{raw}`"))?;
            }
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--out" => args.out = value("--out")?,
            "--run-prefix" => args.run_prefix = value("--run-prefix")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    Ok(args)
}

/// Number of applications in each submitted sweep window.
const APPS_PER_REQUEST: usize = 2;

/// Read timeout for sweep submissions: the response only starts once the
/// sweep has run, so this is sized to the work (a cold two-app scenario
/// pair queued behind other clients), not to the wire.
const SWEEP_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(600);

/// The sweep body client `c` submits as its `r`-th request of `phase`:
/// a two-application window starting at `c + r`, wrapping around the
/// benchmark list — adjacent clients overlap on one application.
fn sweep_body(app_names: &[String], prefix: &str, phase: &str, c: usize, r: usize) -> String {
    let apps: Vec<String> = (0..APPS_PER_REQUEST)
        .map(|k| format!("\"{}\"", app_names[(c + r + k) % app_names.len()]))
        .collect();
    format!(
        r#"{{"models": ["GPT-4"], "apps": [{}], "directions": ["cuda-to-omp"],
           "timing_runs": [1], "run_id": "{prefix}-{phase}-c{c}-r{r}"}}"#,
        apps.join(", ")
    )
}

/// One client's keep-alive session: a lazily (re)opened connection plus the
/// accounting the phase summary reports.
struct ClientSession {
    addr: String,
    conn: Option<ClientConnection>,
    connections_opened: usize,
    retries: usize,
}

impl ClientSession {
    fn new(addr: String) -> ClientSession {
        ClientSession {
            addr,
            conn: None,
            connections_opened: 0,
            retries: 0,
        }
    }

    fn connect(&mut self) -> Result<&mut ClientConnection, String> {
        if self.conn.is_none() {
            let conn = ClientConnection::connect(self.addr.as_str(), SWEEP_TIMEOUT)
                .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
            self.conn = Some(conn);
            self.connections_opened += 1;
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Send one request over the session's connection. If the server closed
    /// the reused connection *at the request boundary* (idle timeout,
    /// request cap, drain — provable because not one response byte
    /// arrived), retry exactly once on a fresh connection — counted — and
    /// fail fast with a clear error otherwise. A response timeout or a
    /// failure mid-response is never retried: the server may already be
    /// running the (non-idempotent) sweep, and a resubmission under the
    /// same run id would only turn into a confusing 409.
    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<http::ClientResponse, String> {
        // A close the server is allowed to perform between requests
        // surfaces as one of these on the write or the first read; anything
        // else means the request may have been (or is being) processed.
        fn closed_at_boundary(e: &std::io::Error) -> bool {
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            )
        }
        let reused = self.conn.is_some();
        for attempt in 0..2 {
            match self.connect()?.send(method, path, body) {
                Ok(resp) => {
                    if resp.closes_connection() {
                        // The server announced the close (request cap or
                        // drain); reconnect lazily before the next request.
                        self.conn = None;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.conn = None;
                    if reused && attempt == 0 && closed_at_boundary(&e) {
                        self.retries += 1;
                        eprintln!(
                            "loadgen: server closed a reused connection on {method} {path}; \
                             retrying once on a fresh connection"
                        );
                        continue;
                    }
                    let what = if attempt == 1 {
                        "retry on a fresh connection failed"
                    } else if reused {
                        "reused connection failed and the error does not prove the \
                         server skipped the request, so it is not retried"
                    } else {
                        "fresh connection failed"
                    };
                    return Err(format!("{method} {path} to {}: {what}: {e}", self.addr));
                }
            }
        }
        unreachable!("every second attempt returns")
    }
}

/// One phase's measurements.
struct PhaseOutcome {
    wall_seconds: f64,
    /// Per-request latencies, milliseconds, sorted ascending.
    latencies_ms: Vec<f64>,
    /// Every run id created during the phase.
    run_ids: Vec<String>,
    /// TCP connections opened across all clients (keep-alive means this
    /// stays at one per client unless the server closed one mid-phase).
    connections_opened: usize,
    /// Requests retried on a fresh connection after a mid-phase close.
    retries: usize,
}

impl PhaseOutcome {
    fn requests(&self) -> usize {
        self.latencies_ms.len()
    }

    fn requests_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn requests_per_connection(&self) -> f64 {
        if self.connections_opened > 0 {
            self.requests() as f64 / self.connections_opened as f64
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile over the sorted latencies.
    fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.latencies_ms.len() as f64).ceil() as usize;
        self.latencies_ms[rank.clamp(1, self.latencies_ms.len()) - 1]
    }
}

/// Run one phase: `clients` threads, each holding one keep-alive connection
/// and submitting `requests` sweeps over it.
fn run_phase(
    args: &LoadgenArgs,
    app_names: &[String],
    phase: &'static str,
) -> Result<PhaseOutcome, String> {
    struct ClientResult {
        results: Vec<(f64, String)>,
        connections_opened: usize,
        retries: usize,
    }

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let addr = args.addr.clone();
        let prefix = args.run_prefix.clone();
        let names = app_names.to_vec();
        let requests = args.requests;
        handles.push(std::thread::spawn(
            move || -> Result<ClientResult, String> {
                let mut session = ClientSession::new(addr);
                let mut results = Vec::with_capacity(requests);
                for r in 0..requests {
                    let body = sweep_body(&names, &prefix, phase, c, r);
                    let sent = Instant::now();
                    let resp = session
                        .send("POST", "/v1/sweeps", Some(body.as_bytes()))
                        .map_err(|e| format!("client {c} request {r}: {e}"))?;
                    let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
                    if !resp.is_success() {
                        return Err(format!(
                            "client {c} request {r}: HTTP {} — {}",
                            resp.status,
                            resp.text()
                        ));
                    }
                    let manifest = lassi_harness::json::parse(&resp.text())
                        .map_err(|e| format!("client {c} request {r}: bad manifest: {e}"))?;
                    let run_id = manifest
                        .get("run_id")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| format!("client {c} request {r}: manifest lacks run_id"))?
                        .to_string();
                    results.push((latency_ms, run_id));
                }
                Ok(ClientResult {
                    results,
                    connections_opened: session.connections_opened,
                    retries: session.retries,
                })
            },
        ));
    }
    let mut latencies_ms = Vec::new();
    let mut run_ids = Vec::new();
    let mut connections_opened = 0;
    let mut retries = 0;
    for handle in handles {
        let client = handle.join().map_err(|_| "client thread panicked")??;
        for (latency, run_id) in client.results {
            latencies_ms.push(latency);
            run_ids.push(run_id);
        }
        connections_opened += client.connections_opened;
        retries += client.retries;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(PhaseOutcome {
        wall_seconds,
        latencies_ms,
        run_ids,
        connections_opened,
        retries,
    })
}

/// `GET /v1/cache/stats` → (hits, misses).
fn cache_stats(addr: &str) -> Result<(u64, u64), String> {
    let resp = http::request(addr, "GET", "/v1/cache/stats", None)
        .map_err(|e| format!("cache stats: {e}"))?;
    if !resp.is_success() {
        return Err(format!("cache stats: HTTP {}", resp.status));
    }
    let value =
        lassi_harness::json::parse(&resp.text()).map_err(|e| format!("cache stats: {e}"))?;
    let field = |name: &str| {
        value
            .get(name)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("cache stats: missing `{name}`"))
    };
    Ok((field("hits")?, field("misses")?))
}

fn phase_line(label: &str, outcome: &PhaseOutcome) -> String {
    format!(
        "{label} phase: {} requests in {:.3}s ({:.1} req/s), p50 {:.3}ms, p99 {:.3}ms, \
         {} connections ({:.1} req/conn, {} retries)",
        outcome.requests(),
        outcome.wall_seconds,
        outcome.requests_per_second(),
        outcome.percentile_ms(50.0),
        outcome.percentile_ms(99.0),
        outcome.connections_opened,
        outcome.requests_per_connection(),
        outcome.retries,
    )
}

/// Fetch `path` and require the body to be byte-identical to the file the
/// server's artifact store holds at `disk_path`.
fn check_bytes_match(addr: &str, path: &str, disk_path: &std::path::Path) -> Result<usize, String> {
    let resp = http::request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))?;
    if !resp.is_success() {
        return Err(format!("GET {path}: HTTP {}", resp.status));
    }
    let disk = std::fs::read(disk_path)
        .map_err(|e| format!("cannot read {}: {e}", disk_path.display()))?;
    if resp.body != disk {
        return Err(format!(
            "GET {path} returned {} bytes that differ from {} ({} bytes)",
            resp.body.len(),
            disk_path.display(),
            disk.len()
        ));
    }
    Ok(disk.len())
}

fn run(args: &LoadgenArgs) -> Result<(), String> {
    let addr = args.addr.as_str();

    // Liveness before loading.
    let health =
        http::request(addr, "GET", "/v1/healthz", None).map_err(|e| format!("healthz: {e}"))?;
    if !health.is_success() {
        return Err(format!("healthz: HTTP {}", health.status));
    }

    let app_names: Vec<String> = lassi_hecbench::applications()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    let scenarios_per_phase = args.clients * args.requests * APPS_PER_REQUEST;
    println!(
        "loadgen: {} clients x {} requests/phase against http://{addr} \
         ({APPS_PER_REQUEST} scenarios per request, keep-alive)",
        args.clients, args.requests
    );

    let (hits0, misses0) = cache_stats(addr)?;
    let cold = run_phase(args, &app_names, "cold")?;
    println!("{}", phase_line("cold", &cold));
    let (hits1, misses1) = cache_stats(addr)?;
    let warm = run_phase(args, &app_names, "warm")?;
    println!("{}", phase_line("warm", &warm));
    let (hits2, misses2) = cache_stats(addr)?;

    let cold_hits = hits1 - hits0;
    let cold_misses = misses1 - misses0;
    let warm_hits = hits2 - hits1;
    let warm_misses = misses2 - misses1;
    println!(
        "cache: cold {cold_hits} hits / {cold_misses} misses, \
         warm {warm_hits} hits / {warm_misses} misses"
    );
    println!(
        "connections: cold {} opened / {} requests, warm {} opened / {} requests",
        cold.connections_opened,
        cold.requests(),
        warm.connections_opened,
        warm.requests(),
    );

    if args.smoke {
        // Warm requests must be served from the scenario cache, not re-run.
        if warm_misses != 0 {
            return Err(format!(
                "warm phase caused {warm_misses} cache misses; expected 0"
            ));
        }
        if warm_hits != scenarios_per_phase as u64 {
            return Err(format!(
                "warm phase hit the cache {warm_hits} times; expected {scenarios_per_phase}"
            ));
        }
        if cold_misses == 0 {
            return Err("cold phase had no cache misses; the cache was pre-warmed \
                 and these numbers would be meaningless — point the server at a \
                 fresh --artifacts directory"
                .into());
        }

        // Keep-alive must actually be in effect: one connection per client
        // per phase (retries may add one, but must not in a clean run).
        for (label, outcome) in [("cold", &cold), ("warm", &warm)] {
            if outcome.connections_opened > args.clients {
                return Err(format!(
                    "{label} phase opened {} connections for {} clients; \
                     keep-alive is not being honoured",
                    outcome.connections_opened, args.clients
                ));
            }
        }

        // Every run the load created is listed.
        let resp =
            http::request(addr, "GET", "/v1/runs", None).map_err(|e| format!("list runs: {e}"))?;
        if !resp.is_success() {
            return Err(format!("list runs: HTTP {} — {}", resp.status, resp.text()));
        }
        let listing = resp.text();
        for run_id in cold.run_ids.iter().chain(&warm.run_ids) {
            if !listing.contains(&format!("\"{run_id}\"")) {
                return Err(format!("GET /v1/runs does not list `{run_id}`"));
            }
        }

        // Byte-identity: a fetched manifest and record set must match the
        // artifact store exactly.
        let store = lassi_bench::artifact_store(&args.common);
        let run_id = &cold.run_ids[0];
        let run_dir = store.run_dir(run_id);
        if !run_dir.exists() {
            return Err(format!(
                "{} does not exist; pass the server's --artifacts directory \
                 to loadgen for the byte-identity check",
                run_dir.display()
            ));
        }
        check_bytes_match(
            addr,
            &format!("/v1/runs/{run_id}"),
            &run_dir.join("manifest.json"),
        )?;
        let artifact = store.load_run(run_id).map_err(|e| e.to_string())?;
        let mut record_bytes = 0;
        for set in &artifact.manifest.record_sets {
            record_bytes += check_bytes_match(
                addr,
                &format!("/v1/runs/{run_id}/records/{set}"),
                &run_dir.join(format!("records-{set}.json")),
            )?;
        }

        // Artifact GC: DELETE one warm run and require it gone from disk
        // and from the listing.
        let victim = &warm.run_ids[0];
        let resp = http::request(addr, "DELETE", &format!("/v1/runs/{victim}"), None)
            .map_err(|e| format!("DELETE {victim}: {e}"))?;
        if !resp.is_success() {
            return Err(format!(
                "DELETE {victim}: HTTP {} — {}",
                resp.status,
                resp.text()
            ));
        }
        if store.run_dir(victim).exists() {
            return Err(format!("run `{victim}` still on disk after DELETE"));
        }
        let listing = http::request(addr, "GET", "/v1/runs", None)
            .map_err(|e| format!("list runs: {e}"))?
            .text();
        if listing.contains(&format!("\"{victim}\"")) {
            return Err(format!("GET /v1/runs still lists deleted `{victim}`"));
        }

        println!(
            "smoke checks passed: warm phase 100% cache hits, keep-alive \
             ({} + {} connections for {} requests), run-{run_id} manifest + \
             {} record sets byte-identical ({record_bytes} bytes), \
             DELETE /v1/runs/{victim} cleaned up",
            cold.connections_opened,
            warm.connections_opened,
            cold.requests() + warm.requests(),
            artifact.manifest.record_sets.len()
        );
    }

    write_bench(
        args,
        scenarios_per_phase,
        &cold,
        &warm,
        [cold_hits, cold_misses, warm_hits, warm_misses],
    )?;
    println!(
        "{} written (cold p50 {:.3}ms vs warm p50 {:.3}ms; baseline warm p50 \
         {BASELINE_WARM_P50_MS:.3}ms)",
        args.out,
        cold.percentile_ms(50.0),
        warm.percentile_ms(50.0)
    );

    if args.shutdown {
        let resp = http::request(addr, "POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if !resp.is_success() {
            return Err(format!("shutdown: HTTP {}", resp.status));
        }
        println!("server asked to shut down");
    }
    Ok(())
}

fn write_bench(
    args: &LoadgenArgs,
    scenarios_per_phase: usize,
    cold: &PhaseOutcome,
    warm: &PhaseOutcome,
    [cold_hits, cold_misses, warm_hits, warm_misses]: [u64; 4],
) -> Result<(), String> {
    let phase_fields = |label: &str, outcome: &PhaseOutcome| {
        vec![
            (
                format!("{label}_wall_seconds"),
                Json::Float(outcome.wall_seconds),
            ),
            (
                format!("{label}_requests_per_second"),
                Json::Float(outcome.requests_per_second()),
            ),
            (
                format!("{label}_p50_ms"),
                Json::Float(outcome.percentile_ms(50.0)),
            ),
            (
                format!("{label}_p99_ms"),
                Json::Float(outcome.percentile_ms(99.0)),
            ),
            (
                format!("{label}_connections_opened"),
                Json::Int(outcome.connections_opened as i128),
            ),
            (
                format!("{label}_requests_per_connection"),
                Json::Float(outcome.requests_per_connection()),
            ),
            (
                format!("{label}_connection_retries"),
                Json::Int(outcome.retries as i128),
            ),
        ]
    };
    let warm_speedup = if warm.wall_seconds > 0.0 {
        cold.wall_seconds / warm.wall_seconds
    } else {
        0.0
    };
    let mut fields = vec![
        ("bench".into(), Json::Str("server-loadgen".into())),
        // v2: keep-alive loadgen — adds per-phase connection accounting and
        // the pre-keep-alive baseline warm latencies for before/after.
        ("schema_version".into(), Json::Int(2)),
        ("created_unix".into(), Json::uint(lassi_bench::unix_now())),
        ("clients".into(), Json::Int(args.clients as i128)),
        (
            "requests_per_client_per_phase".into(),
            Json::Int(args.requests as i128),
        ),
        (
            "scenarios_per_request".into(),
            Json::Int(APPS_PER_REQUEST as i128),
        ),
        (
            "scenarios_per_phase".into(),
            Json::Int(scenarios_per_phase as i128),
        ),
        (
            "requests_per_phase".into(),
            Json::Int(cold.requests() as i128),
        ),
    ];
    fields.extend(phase_fields("cold", cold));
    fields.extend(phase_fields("warm", warm));
    fields.extend([
        ("warm_speedup".into(), Json::Float(warm_speedup)),
        ("cold_cache_hits".into(), Json::uint(cold_hits)),
        ("cold_cache_misses".into(), Json::uint(cold_misses)),
        ("warm_cache_hits".into(), Json::uint(warm_hits)),
        ("warm_cache_misses".into(), Json::uint(warm_misses)),
        (
            "baseline_warm_p50_ms".into(),
            Json::Float(BASELINE_WARM_P50_MS),
        ),
        (
            "baseline_warm_p99_ms".into(),
            Json::Float(BASELINE_WARM_P99_MS),
        ),
    ]);
    let mut text = Json::Object(fields).to_pretty();
    text.push('\n');
    std::fs::write(&args.out, text).map_err(|e| format!("cannot write {}: {e}", args.out))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&args) {
        eprintln!("loadgen: {message}");
        std::process::exit(1);
    }
}
