//! `loadgen` — drive a running `lassi-server` with N concurrent clients
//! over overlapping sweep grids, in a cold phase then a warm phase, and
//! record throughput and latency percentiles.
//!
//! ```text
//! loadgen --addr HOST:PORT [--clients N] [--requests R] [--artifacts DIR]
//!         [--smoke] [--shutdown] [--out PATH] [--run-prefix P]
//! ```
//!
//! Each client submits `R` sweeps per phase; client `c`'s `r`-th request
//! covers an *overlapping* two-application window of the benchmark list, so
//! concurrent clients contend for the same scenario-cache entries. The warm
//! phase resubmits the same grids (fresh run ids): every scenario must then
//! be served from the shared scenario cache.
//!
//! `--smoke` is the self-checking CI mode. It asserts that
//!
//! * every response across both phases is 2xx,
//! * the warm phase adds **zero** cache misses and exactly
//!   `scenarios-per-phase` hits (verified via `GET /v1/cache/stats`
//!   before/after),
//! * a fetched run manifest and record set are **byte-identical** to the
//!   files in the server's artifact store (requires `--artifacts` pointing
//!   at the same directory the server writes),
//! * `GET /v1/runs` lists every run id the load created,
//!
//! and then writes the `BENCH_server.json` perf-trajectory artifact
//! (cold/warm requests/sec and p50/p99 latency). `--shutdown` sends
//! `POST /v1/shutdown` at the end so a scripted server process exits.

use std::time::Instant;

use lassi_harness::Json;
use lassi_server::http;

struct LoadgenArgs {
    common: lassi_bench::CommonArgs,
    addr: String,
    clients: usize,
    requests: usize,
    smoke: bool,
    shutdown: bool,
    out: String,
    run_prefix: String,
}

fn parse_args() -> Result<LoadgenArgs, String> {
    let common = lassi_bench::parse_common_args(std::env::args().skip(1))?;
    let mut args = LoadgenArgs {
        common: common.clone(),
        addr: String::new(),
        clients: 4,
        requests: 2,
        smoke: false,
        shutdown: false,
        out: "BENCH_server.json".into(),
        run_prefix: "lg".into(),
    };
    let mut iter = common.rest.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                let raw = value("--clients")?;
                args.clients = raw
                    .parse()
                    .map_err(|_| format!("bad client count `{raw}`"))?;
            }
            "--requests" => {
                let raw = value("--requests")?;
                args.requests = raw
                    .parse()
                    .map_err(|_| format!("bad request count `{raw}`"))?;
            }
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--out" => args.out = value("--out")?,
            "--run-prefix" => args.run_prefix = value("--run-prefix")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    Ok(args)
}

/// Number of applications in each submitted sweep window.
const APPS_PER_REQUEST: usize = 2;

/// Read timeout for sweep submissions: the response only starts once the
/// sweep has run, so this is sized to the work (a cold two-app scenario
/// pair queued behind other clients), not to the wire.
const SWEEP_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(600);

/// The sweep body client `c` submits as its `r`-th request of `phase`:
/// a two-application window starting at `c + r`, wrapping around the
/// benchmark list — adjacent clients overlap on one application.
fn sweep_body(app_names: &[String], prefix: &str, phase: &str, c: usize, r: usize) -> String {
    let apps: Vec<String> = (0..APPS_PER_REQUEST)
        .map(|k| format!("\"{}\"", app_names[(c + r + k) % app_names.len()]))
        .collect();
    format!(
        r#"{{"models": ["GPT-4"], "apps": [{}], "directions": ["cuda-to-omp"],
           "timing_runs": [1], "run_id": "{prefix}-{phase}-c{c}-r{r}"}}"#,
        apps.join(", ")
    )
}

/// One phase's measurements.
struct PhaseOutcome {
    wall_seconds: f64,
    /// Per-request latencies, milliseconds, sorted ascending.
    latencies_ms: Vec<f64>,
    /// Every run id created during the phase.
    run_ids: Vec<String>,
}

impl PhaseOutcome {
    fn requests(&self) -> usize {
        self.latencies_ms.len()
    }

    fn requests_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile over the sorted latencies.
    fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.latencies_ms.len() as f64).ceil() as usize;
        self.latencies_ms[rank.clamp(1, self.latencies_ms.len()) - 1]
    }
}

/// Run one phase: `clients` threads each submitting `requests` sweeps.
fn run_phase(
    args: &LoadgenArgs,
    app_names: &[String],
    phase: &'static str,
) -> Result<PhaseOutcome, String> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let addr = args.addr.clone();
        let prefix = args.run_prefix.clone();
        let names = app_names.to_vec();
        let requests = args.requests;
        handles.push(std::thread::spawn(
            move || -> Result<Vec<(f64, String)>, String> {
                let mut results = Vec::with_capacity(requests);
                for r in 0..requests {
                    let body = sweep_body(&names, &prefix, phase, c, r);
                    let sent = Instant::now();
                    let resp = http::request_with_timeout(
                        &addr,
                        "POST",
                        "/v1/sweeps",
                        Some(body.as_bytes()),
                        SWEEP_TIMEOUT,
                    )
                    .map_err(|e| format!("client {c} request {r}: {e}"))?;
                    let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
                    if !resp.is_success() {
                        return Err(format!(
                            "client {c} request {r}: HTTP {} — {}",
                            resp.status,
                            resp.text()
                        ));
                    }
                    let manifest = lassi_harness::json::parse(&resp.text())
                        .map_err(|e| format!("client {c} request {r}: bad manifest: {e}"))?;
                    let run_id = manifest
                        .get("run_id")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| format!("client {c} request {r}: manifest lacks run_id"))?
                        .to_string();
                    results.push((latency_ms, run_id));
                }
                Ok(results)
            },
        ));
    }
    let mut latencies_ms = Vec::new();
    let mut run_ids = Vec::new();
    for handle in handles {
        let results = handle.join().map_err(|_| "client thread panicked")??;
        for (latency, run_id) in results {
            latencies_ms.push(latency);
            run_ids.push(run_id);
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(PhaseOutcome {
        wall_seconds,
        latencies_ms,
        run_ids,
    })
}

/// `GET /v1/cache/stats` → (hits, misses).
fn cache_stats(addr: &str) -> Result<(u64, u64), String> {
    let resp = http::request(addr, "GET", "/v1/cache/stats", None)
        .map_err(|e| format!("cache stats: {e}"))?;
    if !resp.is_success() {
        return Err(format!("cache stats: HTTP {}", resp.status));
    }
    let value =
        lassi_harness::json::parse(&resp.text()).map_err(|e| format!("cache stats: {e}"))?;
    let field = |name: &str| {
        value
            .get(name)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("cache stats: missing `{name}`"))
    };
    Ok((field("hits")?, field("misses")?))
}

fn phase_line(label: &str, outcome: &PhaseOutcome) -> String {
    format!(
        "{label} phase: {} requests in {:.3}s ({:.1} req/s), p50 {:.3}ms, p99 {:.3}ms",
        outcome.requests(),
        outcome.wall_seconds,
        outcome.requests_per_second(),
        outcome.percentile_ms(50.0),
        outcome.percentile_ms(99.0),
    )
}

/// Fetch `path` and require the body to be byte-identical to the file the
/// server's artifact store holds at `disk_path`.
fn check_bytes_match(addr: &str, path: &str, disk_path: &std::path::Path) -> Result<usize, String> {
    let resp = http::request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))?;
    if !resp.is_success() {
        return Err(format!("GET {path}: HTTP {}", resp.status));
    }
    let disk = std::fs::read(disk_path)
        .map_err(|e| format!("cannot read {}: {e}", disk_path.display()))?;
    if resp.body != disk {
        return Err(format!(
            "GET {path} returned {} bytes that differ from {} ({} bytes)",
            resp.body.len(),
            disk_path.display(),
            disk.len()
        ));
    }
    Ok(disk.len())
}

fn run(args: &LoadgenArgs) -> Result<(), String> {
    let addr = args.addr.as_str();

    // Liveness before loading.
    let health =
        http::request(addr, "GET", "/v1/healthz", None).map_err(|e| format!("healthz: {e}"))?;
    if !health.is_success() {
        return Err(format!("healthz: HTTP {}", health.status));
    }

    let app_names: Vec<String> = lassi_hecbench::applications()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    let scenarios_per_phase = args.clients * args.requests * APPS_PER_REQUEST;
    println!(
        "loadgen: {} clients x {} requests/phase against http://{addr} \
         ({APPS_PER_REQUEST} scenarios per request)",
        args.clients, args.requests
    );

    let (hits0, misses0) = cache_stats(addr)?;
    let cold = run_phase(args, &app_names, "cold")?;
    println!("{}", phase_line("cold", &cold));
    let (hits1, misses1) = cache_stats(addr)?;
    let warm = run_phase(args, &app_names, "warm")?;
    println!("{}", phase_line("warm", &warm));
    let (hits2, misses2) = cache_stats(addr)?;

    let cold_hits = hits1 - hits0;
    let cold_misses = misses1 - misses0;
    let warm_hits = hits2 - hits1;
    let warm_misses = misses2 - misses1;
    println!(
        "cache: cold {cold_hits} hits / {cold_misses} misses, \
         warm {warm_hits} hits / {warm_misses} misses"
    );

    if args.smoke {
        // Warm requests must be served from the scenario cache, not re-run.
        if warm_misses != 0 {
            return Err(format!(
                "warm phase caused {warm_misses} cache misses; expected 0"
            ));
        }
        if warm_hits != scenarios_per_phase as u64 {
            return Err(format!(
                "warm phase hit the cache {warm_hits} times; expected {scenarios_per_phase}"
            ));
        }
        if cold_misses == 0 {
            return Err("cold phase had no cache misses; the cache was pre-warmed \
                 and these numbers would be meaningless — point the server at a \
                 fresh --artifacts directory"
                .into());
        }

        // Every run the load created is listed.
        let resp =
            http::request(addr, "GET", "/v1/runs", None).map_err(|e| format!("list runs: {e}"))?;
        if !resp.is_success() {
            return Err(format!("list runs: HTTP {} — {}", resp.status, resp.text()));
        }
        let listing = resp.text();
        for run_id in cold.run_ids.iter().chain(&warm.run_ids) {
            if !listing.contains(&format!("\"{run_id}\"")) {
                return Err(format!("GET /v1/runs does not list `{run_id}`"));
            }
        }

        // Byte-identity: a fetched manifest and record set must match the
        // artifact store exactly.
        let store = lassi_bench::artifact_store(&args.common);
        let run_id = &cold.run_ids[0];
        let run_dir = store.run_dir(run_id);
        if !run_dir.exists() {
            return Err(format!(
                "{} does not exist; pass the server's --artifacts directory \
                 to loadgen for the byte-identity check",
                run_dir.display()
            ));
        }
        check_bytes_match(
            addr,
            &format!("/v1/runs/{run_id}"),
            &run_dir.join("manifest.json"),
        )?;
        let artifact = store.load_run(run_id).map_err(|e| e.to_string())?;
        let mut record_bytes = 0;
        for set in &artifact.manifest.record_sets {
            record_bytes += check_bytes_match(
                addr,
                &format!("/v1/runs/{run_id}/records/{set}"),
                &run_dir.join(format!("records-{set}.json")),
            )?;
        }
        println!(
            "smoke checks passed: warm phase 100% cache hits, run-{run_id} \
             manifest + {} record sets byte-identical ({record_bytes} bytes)",
            artifact.manifest.record_sets.len()
        );
    }

    write_bench(
        args,
        scenarios_per_phase,
        &cold,
        &warm,
        [cold_hits, cold_misses, warm_hits, warm_misses],
    )?;
    println!(
        "{} written (cold p50 {:.3}ms vs warm p50 {:.3}ms)",
        args.out,
        cold.percentile_ms(50.0),
        warm.percentile_ms(50.0)
    );

    if args.shutdown {
        let resp = http::request(addr, "POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if !resp.is_success() {
            return Err(format!("shutdown: HTTP {}", resp.status));
        }
        println!("server asked to shut down");
    }
    Ok(())
}

fn write_bench(
    args: &LoadgenArgs,
    scenarios_per_phase: usize,
    cold: &PhaseOutcome,
    warm: &PhaseOutcome,
    [cold_hits, cold_misses, warm_hits, warm_misses]: [u64; 4],
) -> Result<(), String> {
    let phase_fields = |label: &str, outcome: &PhaseOutcome| {
        vec![
            (
                format!("{label}_wall_seconds"),
                Json::Float(outcome.wall_seconds),
            ),
            (
                format!("{label}_requests_per_second"),
                Json::Float(outcome.requests_per_second()),
            ),
            (
                format!("{label}_p50_ms"),
                Json::Float(outcome.percentile_ms(50.0)),
            ),
            (
                format!("{label}_p99_ms"),
                Json::Float(outcome.percentile_ms(99.0)),
            ),
        ]
    };
    let warm_speedup = if warm.wall_seconds > 0.0 {
        cold.wall_seconds / warm.wall_seconds
    } else {
        0.0
    };
    let mut fields = vec![
        ("bench".into(), Json::Str("server-loadgen".into())),
        ("schema_version".into(), Json::Int(1)),
        ("created_unix".into(), Json::uint(lassi_bench::unix_now())),
        ("clients".into(), Json::Int(args.clients as i128)),
        (
            "requests_per_client_per_phase".into(),
            Json::Int(args.requests as i128),
        ),
        (
            "scenarios_per_request".into(),
            Json::Int(APPS_PER_REQUEST as i128),
        ),
        (
            "scenarios_per_phase".into(),
            Json::Int(scenarios_per_phase as i128),
        ),
        (
            "requests_per_phase".into(),
            Json::Int(cold.requests() as i128),
        ),
    ];
    fields.extend(phase_fields("cold", cold));
    fields.extend(phase_fields("warm", warm));
    fields.extend([
        ("warm_speedup".into(), Json::Float(warm_speedup)),
        ("cold_cache_hits".into(), Json::uint(cold_hits)),
        ("cold_cache_misses".into(), Json::uint(cold_misses)),
        ("warm_cache_hits".into(), Json::uint(warm_hits)),
        ("warm_cache_misses".into(), Json::uint(warm_misses)),
    ]);
    let mut text = Json::Object(fields).to_pretty();
    text.push('\n');
    std::fs::write(&args.out, text).map_err(|e| format!("cannot write {}: {e}", args.out))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&args) {
        eprintln!("loadgen: {message}");
        std::process::exit(1);
    }
}
