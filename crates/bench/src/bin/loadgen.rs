//! `loadgen` — drive a running `lassi-server` with N concurrent clients
//! over overlapping sweep grids, in a cold phase then a warm phase, and
//! record submission latency and end-to-end sweep latency separately.
//!
//! ```text
//! loadgen --addr HOST:PORT [--clients N] [--requests R] [--artifacts DIR]
//!         [--smoke] [--shutdown] [--out PATH] [--run-prefix P] [--timings]
//!         [--fleet N1,N2,...]
//! ```
//!
//! Backpressure refusals (`429 queue_full`, `503 draining`) are honoured:
//! the client sleeps for the response's `Retry-After` (jittered to 50–150%
//! so refused clients spread out) and resends, counting the waits in the
//! phase report. `--fleet 1,2,4` additionally measures the remote-worker
//! scaling section of `BENCH_server.json`: for each worker count it spawns
//! that many `worker` processes (built next to this binary), submits one
//! full 80-scenario grid, and records wall clock plus the run's
//! lease/requeue accounting.
//!
//! `--timings` prints a client-side request-latency table after the load:
//! every request sent over a [`ClientSession`] is observed into the
//! process-wide `lassi-obs` registry (`lassi_client_request_seconds`, by
//! method), the same registry the server side exposes at `GET /v1/metrics`.
//!
//! Sweep submission is asynchronous: `POST /v1/sweeps` answers `202
//! Accepted` with a `Location` pointing at the run resource, and the sweep
//! executes on the server's executor pool. Each client therefore submits
//! all `R` of its sweeps up front — measuring **submit latency**, the time
//! to the `202` — and then polls `GET /v1/runs/{id}` until every run is
//! `done`, measuring **end-to-end sweep latency** from the submit instant
//! to the poll that observed `done`. The two distributions answer different
//! questions (is the control plane responsive? how long does the work
//! take?) and the `BENCH_server.json` artifact reports both.
//!
//! Client `c`'s `r`-th sweep covers an *overlapping* two-application window
//! of the benchmark list, so concurrent clients contend for the same
//! scenario-cache entries. The warm phase resubmits the same grids (fresh
//! run ids): every scenario must then be served from the shared scenario
//! cache.
//!
//! Every client holds **one keep-alive connection for the whole phase** —
//! submissions and polls alike ride it. If the server closes a reused
//! connection **at a request boundary** (idle timeout, request cap, drain —
//! provable because no response byte arrived), the client retries that
//! request once on a fresh connection and counts the retry; any other
//! failure is a hard error, never a retry, because the server may already
//! be executing the non-idempotent sweep.
//!
//! `--smoke` is the self-checking CI mode. It asserts that
//!
//! * every submission is answered `202` with a `Location` header, and the
//!   submit p50 stays under 100 ms in both phases (the answer must not be
//!   gated on sweep execution),
//! * every run polls through to `done`,
//! * the warm phase adds **zero** cache misses and exactly
//!   `scenarios-per-phase` hits (via `GET /v1/cache/stats` before/after),
//! * each phase opened at most one connection per client (keep-alive held
//!   across submits *and* polls),
//! * the paginated `GET /v1/runs?limit=` walk reassembles exactly the
//!   unpaginated listing and contains every run the load created,
//! * a fetched run manifest (`GET /v1/runs/{id}/manifest`) and record set
//!   are **byte-identical** to the files in the server's artifact store
//!   (requires `--artifacts` pointing at the server's directory),
//! * `DELETE /v1/runs/{id}` removes a run, and the error envelope
//!   (`{"error": {"code", "message", "status"}}`) carries the expected
//!   machine-readable codes (`run_not_found`, `run_exists`),
//!
//! and then writes the `BENCH_server.json` perf-trajectory artifact
//! (schema_version 3: per-phase submit + end-to-end latency percentiles,
//! throughput, connection accounting, and the synchronous-API baseline for
//! before/after). `--shutdown` sends `POST /v1/shutdown` at the end so a
//! scripted server process exits.

use std::time::{Duration, Instant};

use lassi_harness::Json;
use lassi_server::http;
use lassi_server::http::ClientConnection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The committed warm-phase numbers from the PR 5 `BENCH_server.json`
/// (schema v2), when `POST /v1/sweeps` was synchronous and one request
/// latency covered both submission and execution. Kept in the artifact so
/// before/after spans the API redesign: the v3 `submit` latencies are the
/// comparable "how long until the server answers" figure.
const BASELINE_SYNC_WARM_P50_MS: f64 = 6.767844;
const BASELINE_SYNC_WARM_P99_MS: f64 = 11.774078;

struct LoadgenArgs {
    common: lassi_bench::CommonArgs,
    addr: String,
    clients: usize,
    requests: usize,
    smoke: bool,
    shutdown: bool,
    out: String,
    run_prefix: String,
    timings: bool,
    /// `--fleet 1,2,4`: after the load phases, run one full-grid sweep per
    /// worker count through spawned `worker` processes and record the
    /// scaling (plus lease/requeue accounting) in the bench artifact.
    fleet: Vec<usize>,
}

fn parse_args() -> Result<LoadgenArgs, String> {
    let common = lassi_bench::parse_common_args(std::env::args().skip(1))?;
    let mut args = LoadgenArgs {
        common: common.clone(),
        addr: String::new(),
        clients: 4,
        requests: 2,
        smoke: false,
        shutdown: false,
        out: "BENCH_server.json".into(),
        run_prefix: "lg".into(),
        timings: false,
        fleet: Vec::new(),
    };
    let mut iter = common.rest.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                let raw = value("--clients")?;
                args.clients = raw
                    .parse()
                    .map_err(|_| format!("bad client count `{raw}`"))?;
            }
            "--requests" => {
                let raw = value("--requests")?;
                args.requests = raw
                    .parse()
                    .map_err(|_| format!("bad request count `{raw}`"))?;
            }
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--out" => args.out = value("--out")?,
            "--run-prefix" => args.run_prefix = value("--run-prefix")?,
            "--timings" => args.timings = true,
            "--fleet" => {
                let raw = value("--fleet")?;
                args.fleet = raw
                    .split(',')
                    .map(|n| {
                        n.parse::<usize>()
                            .ok()
                            .filter(|n| *n >= 1)
                            .ok_or(format!("bad --fleet worker count `{n}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    Ok(args)
}

/// Number of applications in each submitted sweep window.
const APPS_PER_REQUEST: usize = 2;

/// Socket read timeout. Submissions answer immediately now, so this is a
/// wire timeout, not a work timeout; how long a *sweep* may take is bounded
/// separately by [`SWEEP_DEADLINE`] in the poll loop.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a client waits for all of its submitted sweeps to finish.
const SWEEP_DEADLINE: Duration = Duration::from_secs(600);

/// Poll-interval bounds: start fast (a tiny sweep may be done in
/// milliseconds), back off exponentially to the cap. The cap stays far
/// under the server's 5 s keep-alive idle timeout so polling never lets
/// the connection go idle.
const POLL_INTERVAL_FLOOR: Duration = Duration::from_millis(5);
const POLL_INTERVAL_CAP: Duration = Duration::from_millis(50);

/// The sweep body client `c` submits as its `r`-th request of `phase`:
/// a two-application window starting at `c + r`, wrapping around the
/// benchmark list — adjacent clients overlap on one application.
fn sweep_body(app_names: &[String], prefix: &str, phase: &str, c: usize, r: usize) -> String {
    let apps: Vec<String> = (0..APPS_PER_REQUEST)
        .map(|k| format!("\"{}\"", app_names[(c + r + k) % app_names.len()]))
        .collect();
    format!(
        r#"{{"models": ["GPT-4"], "apps": [{}], "directions": ["cuda-to-omp"],
           "timing_runs": [1], "run_id": "{prefix}-{phase}-c{c}-r{r}"}}"#,
        apps.join(", ")
    )
}

/// The `code` slug out of a structured error envelope.
fn error_code(resp: &http::ClientResponse) -> Result<String, String> {
    let value = lassi_harness::json::parse(&resp.text())
        .map_err(|e| format!("error body is not JSON: {e} — {}", resp.text()))?;
    value
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(|c| c.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("no error.code in {}", resp.text()))
}

/// How many `Retry-After` waits one request may accumulate before the
/// refusal is surfaced to the caller as the final response.
const MAX_BACKOFF_WAITS: usize = 10;

/// One client's keep-alive session: a lazily (re)opened connection plus the
/// accounting the phase summary reports.
struct ClientSession {
    addr: String,
    conn: Option<ClientConnection>,
    connections_opened: usize,
    requests_sent: usize,
    retries: usize,
    /// `Retry-After` backoff sleeps taken after 429/503 refusals.
    backoff_waits: usize,
    /// Jitter source for the backoff sleeps (seeded per client so a burst
    /// of refused clients does not retry in lockstep).
    rng: StdRng,
}

impl ClientSession {
    fn new(addr: String, seed: u64) -> ClientSession {
        ClientSession {
            addr,
            conn: None,
            connections_opened: 0,
            requests_sent: 0,
            retries: 0,
            backoff_waits: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x6C6F6164),
        }
    }

    fn connect(&mut self) -> Result<&mut ClientConnection, String> {
        if self.conn.is_none() {
            let conn = ClientConnection::connect(self.addr.as_str(), READ_TIMEOUT)
                .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
            self.conn = Some(conn);
            self.connections_opened += 1;
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Jitter a backoff delay to 50–150% of `base` so refused clients
    /// spread out instead of retrying in lockstep.
    fn jitter(&mut self, base: Duration) -> Duration {
        let millis = base.as_millis().max(1) as usize;
        Duration::from_millis(self.rng.gen_range(millis / 2..millis + millis / 2 + 1) as u64)
    }

    /// Send one request, honouring backpressure: a `429 queue_full` or
    /// `503 draining` answer sleeps for the response's `Retry-After`
    /// (jittered; an exponential fallback covers a missing header) and
    /// resends, up to [`MAX_BACKOFF_WAITS`] times before surfacing the
    /// refusal to the caller. Sweep submission is idempotent under a fixed
    /// `run_id` — a refused request was never enqueued — so resending after
    /// a refusal is always safe.
    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<http::ClientResponse, String> {
        let mut fallback = Duration::from_millis(100);
        let mut waits = 0;
        loop {
            let resp = self.send_raw(method, path, body)?;
            if (resp.status == 429 || resp.status == 503) && waits < MAX_BACKOFF_WAITS {
                let base = resp
                    .header("retry-after")
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(Duration::from_secs)
                    .unwrap_or(fallback);
                let wait = self.jitter(base);
                self.backoff_waits += 1;
                waits += 1;
                eprintln!(
                    "loadgen: {method} {path} refused ({}); backing off {wait:?} \
                     ({waits}/{MAX_BACKOFF_WAITS})",
                    resp.status
                );
                std::thread::sleep(wait);
                fallback = (fallback * 2).min(Duration::from_secs(5));
                continue;
            }
            return Ok(resp);
        }
    }

    /// Send one request over the session's connection. If the server closed
    /// the reused connection *at the request boundary* (idle timeout,
    /// request cap, drain — provable because not one response byte
    /// arrived), retry exactly once on a fresh connection — counted — and
    /// fail fast with a clear error otherwise. A response timeout or a
    /// failure mid-response is never retried: the server may already be
    /// executing the (non-idempotent) sweep, and a resubmission under the
    /// same run id would only turn into a confusing 409.
    fn send_raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<http::ClientResponse, String> {
        // A close the server is allowed to perform between requests
        // surfaces as one of these on the write or the first read; anything
        // else means the request may have been (or is being) processed.
        fn closed_at_boundary(e: &std::io::Error) -> bool {
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            )
        }
        let reused = self.conn.is_some();
        let started = Instant::now();
        for attempt in 0..2 {
            match self.connect()?.send(method, path, body) {
                Ok(resp) => {
                    self.requests_sent += 1;
                    // Same registry the server exposes at /v1/metrics; here
                    // it backs the client-side `--timings` table.
                    lassi_obs::global()
                        .histogram(
                            "lassi_client_request_seconds",
                            "Client-observed request latency, by method.",
                            &[("method", method)],
                            lassi_obs::LATENCY_SECONDS,
                        )
                        .observe(started.elapsed().as_secs_f64());
                    if resp.closes_connection() {
                        // The server announced the close (request cap or
                        // drain); reconnect lazily before the next request.
                        self.conn = None;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.conn = None;
                    if reused && attempt == 0 && closed_at_boundary(&e) {
                        self.retries += 1;
                        eprintln!(
                            "loadgen: server closed a reused connection on {method} {path}; \
                             retrying once on a fresh connection"
                        );
                        continue;
                    }
                    let what = if attempt == 1 {
                        "retry on a fresh connection failed"
                    } else if reused {
                        "reused connection failed and the error does not prove the \
                         server skipped the request, so it is not retried"
                    } else {
                        "fresh connection failed"
                    };
                    return Err(format!("{method} {path} to {}: {what}: {e}", self.addr));
                }
            }
        }
        unreachable!("every second attempt returns")
    }
}

/// One phase's measurements.
struct PhaseOutcome {
    wall_seconds: f64,
    /// Time to the `202 Accepted` per submission, milliseconds, sorted.
    submit_ms: Vec<f64>,
    /// Submit instant → the poll that observed `done`, milliseconds, sorted.
    sweep_ms: Vec<f64>,
    /// Every run id created during the phase.
    run_ids: Vec<String>,
    /// TCP connections opened across all clients (keep-alive means this
    /// stays at one per client unless the server closed one mid-phase).
    connections_opened: usize,
    /// Every request sent (submissions + polls), for req/conn accounting.
    requests_sent: usize,
    /// Requests retried on a fresh connection after a mid-phase close.
    retries: usize,
    /// `Retry-After` backoff sleeps taken after 429/503 refusals.
    backoff_waits: usize,
}

/// Nearest-rank percentile over sorted ascending samples.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl PhaseOutcome {
    fn sweeps(&self) -> usize {
        self.run_ids.len()
    }

    fn sweeps_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sweeps() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn requests_per_connection(&self) -> f64 {
        if self.connections_opened > 0 {
            self.requests_sent as f64 / self.connections_opened as f64
        } else {
            0.0
        }
    }
}

/// Run one phase: `clients` threads, each submitting `requests` sweeps up
/// front over one keep-alive connection — timing each `202` — and then
/// polling every run on that same connection until all are `done`.
fn run_phase(
    args: &LoadgenArgs,
    app_names: &[String],
    phase: &'static str,
) -> Result<PhaseOutcome, String> {
    struct ClientResult {
        submit_ms: Vec<f64>,
        sweep_ms: Vec<f64>,
        run_ids: Vec<String>,
        connections_opened: usize,
        requests_sent: usize,
        retries: usize,
        backoff_waits: usize,
    }

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let addr = args.addr.clone();
        let prefix = args.run_prefix.clone();
        let names = app_names.to_vec();
        let requests = args.requests;
        handles.push(std::thread::spawn(
            move || -> Result<ClientResult, String> {
                let mut session = ClientSession::new(addr, c as u64);
                let mut submit_ms = Vec::with_capacity(requests);
                // (run id, submit instant) for every accepted sweep.
                let mut pending: Vec<(String, Instant)> = Vec::with_capacity(requests);
                for r in 0..requests {
                    let body = sweep_body(&names, &prefix, phase, c, r);
                    let sent = Instant::now();
                    let resp = session
                        .send("POST", "/v1/sweeps", Some(body.as_bytes()))
                        .map_err(|e| format!("client {c} submit {r}: {e}"))?;
                    submit_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    if resp.status != 202 {
                        return Err(format!(
                            "client {c} submit {r}: expected 202 Accepted, got {} — {}",
                            resp.status,
                            resp.text()
                        ));
                    }
                    let view = lassi_harness::json::parse(&resp.text())
                        .map_err(|e| format!("client {c} submit {r}: bad body: {e}"))?;
                    let run_id = view
                        .get("id")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| format!("client {c} submit {r}: body lacks id"))?
                        .to_string();
                    let location = resp
                        .header("location")
                        .ok_or_else(|| format!("client {c} submit {r}: no Location header"))?;
                    if location != format!("/v1/runs/{run_id}") {
                        return Err(format!(
                            "client {c} submit {r}: Location `{location}` does not \
                             point at run `{run_id}`"
                        ));
                    }
                    pending.push((run_id, sent));
                }

                // Poll every accepted run to completion over the same
                // connection, backing off while nothing changes.
                let mut sweep_ms = Vec::with_capacity(requests);
                let mut run_ids = Vec::with_capacity(requests);
                let deadline = Instant::now() + SWEEP_DEADLINE;
                let mut interval = POLL_INTERVAL_FLOOR;
                while !pending.is_empty() {
                    let mut still_pending = Vec::with_capacity(pending.len());
                    for (run_id, submitted) in pending {
                        let resp = session
                            .send("GET", &format!("/v1/runs/{run_id}"), None)
                            .map_err(|e| format!("client {c} poll {run_id}: {e}"))?;
                        if !resp.is_success() {
                            return Err(format!(
                                "client {c} poll {run_id}: HTTP {} — {}",
                                resp.status,
                                resp.text()
                            ));
                        }
                        let view = lassi_harness::json::parse(&resp.text())
                            .map_err(|e| format!("client {c} poll {run_id}: {e}"))?;
                        match view.get("state").and_then(|s| s.as_str()) {
                            Some("done") => {
                                sweep_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                                run_ids.push(run_id);
                            }
                            Some("queued" | "running") => still_pending.push((run_id, submitted)),
                            state => {
                                return Err(format!(
                                    "client {c}: run {run_id} ended {state:?} \
                                     (reason: {:?}) instead of done",
                                    view.get("reason").and_then(|r| r.as_str())
                                ))
                            }
                        }
                    }
                    pending = still_pending;
                    if !pending.is_empty() {
                        if Instant::now() > deadline {
                            return Err(format!(
                                "client {c}: {} sweep(s) still unfinished after {:?}",
                                pending.len(),
                                SWEEP_DEADLINE
                            ));
                        }
                        std::thread::sleep(interval);
                        interval = (interval * 2).min(POLL_INTERVAL_CAP);
                    }
                }
                Ok(ClientResult {
                    submit_ms,
                    sweep_ms,
                    run_ids,
                    connections_opened: session.connections_opened,
                    requests_sent: session.requests_sent,
                    retries: session.retries,
                    backoff_waits: session.backoff_waits,
                })
            },
        ));
    }
    let mut submit_ms = Vec::new();
    let mut sweep_ms = Vec::new();
    let mut run_ids = Vec::new();
    let mut connections_opened = 0;
    let mut requests_sent = 0;
    let mut retries = 0;
    let mut backoff_waits = 0;
    for handle in handles {
        let client = handle.join().map_err(|_| "client thread panicked")??;
        submit_ms.extend(client.submit_ms);
        sweep_ms.extend(client.sweep_ms);
        run_ids.extend(client.run_ids);
        connections_opened += client.connections_opened;
        requests_sent += client.requests_sent;
        retries += client.retries;
        backoff_waits += client.backoff_waits;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    submit_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    sweep_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(PhaseOutcome {
        wall_seconds,
        submit_ms,
        sweep_ms,
        run_ids,
        connections_opened,
        requests_sent,
        retries,
        backoff_waits,
    })
}

/// `GET /v1/cache/stats` → (hits, misses).
fn cache_stats(addr: &str) -> Result<(u64, u64), String> {
    let resp = http::request(addr, "GET", "/v1/cache/stats", None)
        .map_err(|e| format!("cache stats: {e}"))?;
    if !resp.is_success() {
        return Err(format!("cache stats: HTTP {}", resp.status));
    }
    let value =
        lassi_harness::json::parse(&resp.text()).map_err(|e| format!("cache stats: {e}"))?;
    let field = |name: &str| {
        value
            .get(name)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("cache stats: missing `{name}`"))
    };
    Ok((field("hits")?, field("misses")?))
}

fn phase_line(label: &str, outcome: &PhaseOutcome) -> String {
    format!(
        "{label} phase: {} sweeps in {:.3}s ({:.1} sweeps/s), e2e p50 {:.3}ms / \
         p99 {:.3}ms, {} connections ({:.1} req/conn, {} retries, \
         {} retry-after waits)",
        outcome.sweeps(),
        outcome.wall_seconds,
        outcome.sweeps_per_second(),
        percentile_ms(&outcome.sweep_ms, 50.0),
        percentile_ms(&outcome.sweep_ms, 99.0),
        outcome.connections_opened,
        outcome.requests_per_connection(),
        outcome.retries,
        outcome.backoff_waits,
    )
}

/// One `--fleet` scaling measurement: a full 80-scenario grid drained by
/// `workers` spawned worker processes.
struct FleetScale {
    workers: usize,
    scenarios: u64,
    wall_seconds: f64,
    leases_granted: u64,
    leases_expired: u64,
    jobs_requeued: u64,
    duplicate_completions: u64,
}

/// The current value of the unlabelled `lassi_fleet_workers_active` gauge
/// from `GET /v1/metrics`.
fn fleet_workers_active(addr: &str) -> Result<u64, String> {
    let resp =
        http::request(addr, "GET", "/v1/metrics", None).map_err(|e| format!("metrics: {e}"))?;
    if !resp.is_success() {
        return Err(format!("metrics: HTTP {}", resp.status));
    }
    for line in resp.text().lines() {
        if let Some(value) = line.strip_prefix("lassi_fleet_workers_active ") {
            return value
                .trim()
                .parse()
                .map_err(|_| format!("bad gauge value `{value}`"));
        }
    }
    Ok(0)
}

/// Run one fleet-scaling point: spawn `workers` worker processes against
/// the server, submit a full default grid (distinct seed per point), time
/// submit → done, and read the run's lease/requeue accounting.
fn run_fleet_scale(args: &LoadgenArgs, workers: usize, seed: u64) -> Result<FleetScale, String> {
    let addr = args.addr.as_str();
    let worker_bin = std::env::current_exe()
        .map_err(|e| format!("cannot locate own binary: {e}"))?
        .with_file_name(format!("worker{}", std::env::consts::EXE_SUFFIX));
    if !worker_bin.exists() {
        return Err(format!(
            "{} does not exist; build the `worker` binary next to loadgen \
             for --fleet mode",
            worker_bin.display()
        ));
    }
    let mut children = Vec::with_capacity(workers);
    for w in 0..workers {
        let child = std::process::Command::new(&worker_bin)
            .args([
                "--addr",
                addr,
                "--worker-id",
                &format!("{}-fleet{workers}-w{w}", args.run_prefix),
                "--capacity",
                "4",
                "--poll-ms",
                "10",
            ])
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", worker_bin.display()))?;
        children.push(child);
    }
    // Kill the fleet on every exit path: a worker leaked past a failure
    // would drain the *next* scaling point's run too.
    let result = (|| {
        // Wait until every worker has registered (its first lease poll), so
        // the run drains remotely from job zero.
        let deadline = Instant::now() + Duration::from_secs(10);
        while fleet_workers_active(addr)? < workers as u64 {
            if Instant::now() > deadline {
                return Err(format!("{workers} workers did not register in 10s"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        let run_id = format!("{}-fleet-n{workers}", args.run_prefix);
        let body = format!(r#"{{"timing_runs": [1], "seed": {seed}, "run_id": "{run_id}"}}"#);
        let started = Instant::now();
        let resp = http::request(addr, "POST", "/v1/sweeps", Some(body.as_bytes()))
            .map_err(|e| format!("fleet submit: {e}"))?;
        if resp.status != 202 {
            return Err(format!(
                "fleet submit: expected 202, got {} — {}",
                resp.status,
                resp.text()
            ));
        }
        let deadline = Instant::now() + SWEEP_DEADLINE;
        let view = loop {
            let resp = http::request(addr, "GET", &format!("/v1/runs/{run_id}"), None)
                .map_err(|e| format!("fleet poll: {e}"))?;
            let view =
                lassi_harness::json::parse(&resp.text()).map_err(|e| format!("fleet poll: {e}"))?;
            match view.get("state").and_then(|s| s.as_str()) {
                Some("done") => break view,
                Some("queued" | "running") => {
                    if Instant::now() > deadline {
                        return Err(format!(
                            "fleet run {run_id} unfinished after {SWEEP_DEADLINE:?}"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                state => {
                    return Err(format!(
                        "fleet run {run_id} ended {state:?} (reason: {:?})",
                        view.get("reason").and_then(|r| r.as_str())
                    ))
                }
            }
        };
        let wall_seconds = started.elapsed().as_secs_f64();
        let scenarios = view
            .get("progress")
            .and_then(|p| p.get("total"))
            .and_then(Json::as_u64)
            .ok_or("fleet run view lacks progress.total")?;
        let fleet = view
            .get("fleet")
            .filter(|v| !matches!(v, Json::Null))
            .ok_or("fleet run view lacks lease accounting; did the run drain locally?")?;
        let count = |name: &str| fleet.get(name).and_then(Json::as_u64).unwrap_or(0);
        Ok(FleetScale {
            workers,
            scenarios,
            wall_seconds,
            leases_granted: count("leases_granted"),
            leases_expired: count("leases_expired"),
            jobs_requeued: count("jobs_requeued"),
            duplicate_completions: count("duplicate_completions"),
        })
    })();
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

/// Walk `GET /v1/runs?limit=` pages to the end; returns every listed id in
/// order and checks the pages reassemble exactly the unpaginated listing.
fn paginated_run_ids(addr: &str, limit: usize) -> Result<Vec<String>, String> {
    let ids_of = |value: &Json| -> Result<Vec<String>, String> {
        value
            .get("runs")
            .and_then(|v| v.as_array())
            .ok_or("listing lacks `runs`")?
            .iter()
            .map(|row| {
                row.get("id")
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("run row lacks `id`: {}", row.to_compact()))
            })
            .collect()
    };
    let fetch = |path: &str| -> Result<Json, String> {
        let resp = http::request(addr, "GET", path, None).map_err(|e| format!("{path}: {e}"))?;
        if !resp.is_success() {
            return Err(format!("{path}: HTTP {} — {}", resp.status, resp.text()));
        }
        lassi_harness::json::parse(&resp.text()).map_err(|e| format!("{path}: {e}"))
    };

    let mut walked: Vec<String> = Vec::new();
    let mut after: Option<String> = None;
    loop {
        let path = match &after {
            None => format!("/v1/runs?limit={limit}"),
            Some(cursor) => format!("/v1/runs?limit={limit}&after={cursor}"),
        };
        let page = fetch(&path)?;
        let ids = ids_of(&page)?;
        if ids.len() > limit {
            return Err(format!("page {path} exceeds its limit: {} ids", ids.len()));
        }
        walked.extend(ids);
        match page.get("next") {
            Some(Json::Str(cursor)) => after = Some(cursor.clone()),
            _ => break,
        }
    }
    let full = ids_of(&fetch("/v1/runs")?)?;
    if walked != full {
        return Err(format!(
            "paginated walk ({} ids) differs from the unpaginated listing ({} ids)",
            walked.len(),
            full.len()
        ));
    }
    Ok(walked)
}

/// Fetch `path` and require the body to be byte-identical to the file the
/// server's artifact store holds at `disk_path`.
fn check_bytes_match(addr: &str, path: &str, disk_path: &std::path::Path) -> Result<usize, String> {
    let resp = http::request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))?;
    if !resp.is_success() {
        return Err(format!("GET {path}: HTTP {}", resp.status));
    }
    let disk = std::fs::read(disk_path)
        .map_err(|e| format!("cannot read {}: {e}", disk_path.display()))?;
    if resp.body != disk {
        return Err(format!(
            "GET {path} returned {} bytes that differ from {} ({} bytes)",
            resp.body.len(),
            disk_path.display(),
            disk.len()
        ));
    }
    Ok(disk.len())
}

fn run(args: &LoadgenArgs) -> Result<(), String> {
    let addr = args.addr.as_str();

    // Liveness before loading.
    let health =
        http::request(addr, "GET", "/v1/healthz", None).map_err(|e| format!("healthz: {e}"))?;
    if !health.is_success() {
        return Err(format!("healthz: HTTP {}", health.status));
    }

    let app_names: Vec<String> = lassi_hecbench::applications()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    let scenarios_per_phase = args.clients * args.requests * APPS_PER_REQUEST;
    println!(
        "loadgen: {} clients x {} async sweeps/phase against http://{addr} \
         ({APPS_PER_REQUEST} scenarios per sweep, keep-alive submit + poll)",
        args.clients, args.requests
    );

    let (hits0, misses0) = cache_stats(addr)?;
    let cold = run_phase(args, &app_names, "cold")?;
    println!("{}", phase_line("cold", &cold));
    let (hits1, misses1) = cache_stats(addr)?;
    let warm = run_phase(args, &app_names, "warm")?;
    println!("{}", phase_line("warm", &warm));
    let (hits2, misses2) = cache_stats(addr)?;

    let cold_hits = hits1 - hits0;
    let cold_misses = misses1 - misses0;
    let warm_hits = hits2 - hits1;
    let warm_misses = misses2 - misses1;
    println!(
        "cache: cold {cold_hits} hits / {cold_misses} misses, \
         warm {warm_hits} hits / {warm_misses} misses"
    );
    println!(
        "submit latency: cold p50 {:.3}ms / p99 {:.3}ms, warm p50 {:.3}ms / p99 {:.3}ms",
        percentile_ms(&cold.submit_ms, 50.0),
        percentile_ms(&cold.submit_ms, 99.0),
        percentile_ms(&warm.submit_ms, 50.0),
        percentile_ms(&warm.submit_ms, 99.0),
    );
    println!(
        "connections: cold {} opened / {} sweeps, warm {} opened / {} sweeps",
        cold.connections_opened,
        cold.sweeps(),
        warm.connections_opened,
        warm.sweeps(),
    );

    if args.smoke {
        // The 202 must come from validation + enqueue, never from sweep
        // execution: a control plane answering under 100 ms while the cold
        // sweeps take seconds is the tentpole property of the async API.
        for (label, outcome) in [("cold", &cold), ("warm", &warm)] {
            let submit_p50 = percentile_ms(&outcome.submit_ms, 50.0);
            if submit_p50 >= 100.0 {
                return Err(format!(
                    "{label} phase submit p50 is {submit_p50:.3}ms; an async \
                     submission must answer in under 100ms"
                ));
            }
        }

        // Warm sweeps must be served from the scenario cache, not re-run.
        if warm_misses != 0 {
            return Err(format!(
                "warm phase caused {warm_misses} cache misses; expected 0"
            ));
        }
        if warm_hits != scenarios_per_phase as u64 {
            return Err(format!(
                "warm phase hit the cache {warm_hits} times; expected {scenarios_per_phase}"
            ));
        }
        if cold_misses == 0 {
            return Err("cold phase had no cache misses; the cache was pre-warmed \
                 and these numbers would be meaningless — point the server at a \
                 fresh --artifacts directory"
                .into());
        }

        // Keep-alive must hold across submissions *and* polls: one
        // connection per client per phase (retries may add one, but must
        // not in a clean run).
        for (label, outcome) in [("cold", &cold), ("warm", &warm)] {
            if outcome.connections_opened > args.clients {
                return Err(format!(
                    "{label} phase opened {} connections for {} clients; \
                     keep-alive is not being honoured",
                    outcome.connections_opened, args.clients
                ));
            }
        }

        // The paginated walk must reassemble the full listing and contain
        // every run the load created.
        let listed = paginated_run_ids(addr, 3)?;
        for run_id in cold.run_ids.iter().chain(&warm.run_ids) {
            if !listed.iter().any(|id| id == run_id) {
                return Err(format!("paginated GET /v1/runs does not list `{run_id}`"));
            }
        }

        // Byte-identity: a fetched manifest and record set must match the
        // artifact store exactly.
        let store = lassi_bench::artifact_store(&args.common);
        let run_id = &cold.run_ids[0];
        let run_dir = store.run_dir(run_id);
        if !run_dir.exists() {
            return Err(format!(
                "{} does not exist; pass the server's --artifacts directory \
                 to loadgen for the byte-identity check",
                run_dir.display()
            ));
        }
        check_bytes_match(
            addr,
            &format!("/v1/runs/{run_id}/manifest"),
            &run_dir.join("manifest.json"),
        )?;
        let artifact = store.load_run(run_id).map_err(|e| e.to_string())?;
        let mut record_bytes = 0;
        for set in &artifact.manifest.record_sets {
            record_bytes += check_bytes_match(
                addr,
                &format!("/v1/runs/{run_id}/records/{set}"),
                &run_dir.join(format!("records-{set}.json")),
            )?;
        }

        // A done run's trace must exist, parse as trace.v1 JSONL, hold
        // exactly one `job` span per scenario (each with its queue-wait vs
        // execute split), and be served byte-identically by the trace
        // endpoint.
        let trace =
            lassi_harness::read_trace(&run_dir).map_err(|e| format!("trace for {run_id}: {e}"))?;
        let job_spans: Vec<_> = trace
            .iter()
            .filter(|ev| ev.kind == lassi_obs::TraceKind::Span && ev.name == "job")
            .collect();
        if job_spans.len() != APPS_PER_REQUEST {
            return Err(format!(
                "trace for {run_id} holds {} job spans; expected one per \
                 scenario ({APPS_PER_REQUEST})",
                job_spans.len()
            ));
        }
        for span in &job_spans {
            for field in ["queue_wait_us", "execute_us"] {
                if span.field(field).is_none() {
                    return Err(format!("job span in {run_id}'s trace lacks `{field}`"));
                }
            }
        }
        check_bytes_match(
            addr,
            &format!("/v1/runs/{run_id}/trace"),
            &run_dir.join(lassi_harness::TRACE_FILE),
        )?;

        // Resubmitting a finished run id must be refused with the
        // machine-readable `run_exists` code, not re-executed.
        let dup = sweep_body(&app_names, &args.run_prefix, "cold", 0, 0);
        let resp = http::request(addr, "POST", "/v1/sweeps", Some(dup.as_bytes()))
            .map_err(|e| format!("duplicate submit: {e}"))?;
        if resp.status != 409 || error_code(&resp)? != "run_exists" {
            return Err(format!(
                "duplicate submit: expected 409 run_exists, got {} — {}",
                resp.status,
                resp.text()
            ));
        }

        // Artifact GC: DELETE one warm run and require it gone from disk
        // and from the listing; a second DELETE must answer with the
        // `run_not_found` envelope.
        let victim = &warm.run_ids[0];
        let resp = http::request(addr, "DELETE", &format!("/v1/runs/{victim}"), None)
            .map_err(|e| format!("DELETE {victim}: {e}"))?;
        if !resp.is_success() {
            return Err(format!(
                "DELETE {victim}: HTTP {} — {}",
                resp.status,
                resp.text()
            ));
        }
        if store.run_dir(victim).exists() {
            return Err(format!("run `{victim}` still on disk after DELETE"));
        }
        let listed = paginated_run_ids(addr, 3)?;
        if listed.iter().any(|id| id == victim) {
            return Err(format!("GET /v1/runs still lists deleted `{victim}`"));
        }
        let resp = http::request(addr, "DELETE", &format!("/v1/runs/{victim}"), None)
            .map_err(|e| format!("second DELETE {victim}: {e}"))?;
        if resp.status != 404 || error_code(&resp)? != "run_not_found" {
            return Err(format!(
                "second DELETE {victim}: expected 404 run_not_found, got {} — {}",
                resp.status,
                resp.text()
            ));
        }

        println!(
            "smoke checks passed: submits under 100ms, warm phase 100% cache \
             hits, keep-alive ({} + {} connections for {} sweeps), pagination \
             walk consistent, run-{run_id} manifest + {} record sets \
             byte-identical ({record_bytes} bytes), trace.jsonl parsed with \
             one job span per scenario, DELETE /v1/runs/{victim} \
             cleaned up with envelope codes",
            cold.connections_opened,
            warm.connections_opened,
            cold.sweeps() + warm.sweeps(),
            artifact.manifest.record_sets.len()
        );
    }

    let mut fleet_scaling = Vec::with_capacity(args.fleet.len());
    for &workers in &args.fleet {
        // One fixed seed for every scale point: remote leases never consult
        // the scenario cache, so each fleet size drains the *identical*
        // 80-scenario workload and the curve compares like with like.
        let scale = run_fleet_scale(args, workers, 0xF1EE7)?;
        println!(
            "fleet n{workers}: {} scenarios in {:.3}s ({:.1} scenarios/s), \
             {} leases granted ({} expired, {} jobs requeued, {} duplicate \
             completions)",
            scale.scenarios,
            scale.wall_seconds,
            scale.scenarios as f64 / scale.wall_seconds.max(1e-9),
            scale.leases_granted,
            scale.leases_expired,
            scale.jobs_requeued,
            scale.duplicate_completions,
        );
        fleet_scaling.push(scale);
    }

    write_bench(
        args,
        scenarios_per_phase,
        &cold,
        &warm,
        [cold_hits, cold_misses, warm_hits, warm_misses],
        &fleet_scaling,
    )?;
    println!(
        "{} written (submit p50 {:.3}ms, cold e2e p50 {:.3}ms vs warm e2e p50 \
         {:.3}ms; sync-API baseline warm p50 {BASELINE_SYNC_WARM_P50_MS:.3}ms)",
        args.out,
        percentile_ms(&cold.submit_ms, 50.0),
        percentile_ms(&cold.sweep_ms, 50.0),
        percentile_ms(&warm.sweep_ms, 50.0)
    );

    if args.timings {
        print_client_timings();
    }

    if args.shutdown {
        let resp = http::request(addr, "POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if !resp.is_success() {
            return Err(format!("shutdown: HTTP {}", resp.status));
        }
        println!("server asked to shut down");
    }
    Ok(())
}

/// The `--timings` table: client-observed request latency by method, from
/// the in-process `lassi-obs` registry [`ClientSession::send`] feeds.
fn print_client_timings() {
    let registry = lassi_obs::global();
    println!(
        "{:<8} {:>9} {:>11} {:>10}",
        "method", "requests", "total s", "mean ms"
    );
    for method in ["GET", "POST", "DELETE"] {
        let Some(snapshot) =
            registry.histogram_snapshot("lassi_client_request_seconds", &[("method", method)])
        else {
            continue;
        };
        if snapshot.count == 0 {
            continue;
        }
        let mean_ms = snapshot.sum / snapshot.count as f64 * 1e3;
        println!(
            "{method:<8} {:>9} {:>11.3} {mean_ms:>10.3}",
            snapshot.count, snapshot.sum
        );
    }
}

fn write_bench(
    args: &LoadgenArgs,
    scenarios_per_phase: usize,
    cold: &PhaseOutcome,
    warm: &PhaseOutcome,
    [cold_hits, cold_misses, warm_hits, warm_misses]: [u64; 4],
    fleet_scaling: &[FleetScale],
) -> Result<(), String> {
    let phase_fields = |label: &str, outcome: &PhaseOutcome| {
        vec![
            (
                format!("{label}_wall_seconds"),
                Json::Float(outcome.wall_seconds),
            ),
            (
                format!("{label}_sweeps_per_second"),
                Json::Float(outcome.sweeps_per_second()),
            ),
            (
                format!("{label}_submit_p50_ms"),
                Json::Float(percentile_ms(&outcome.submit_ms, 50.0)),
            ),
            (
                format!("{label}_submit_p99_ms"),
                Json::Float(percentile_ms(&outcome.submit_ms, 99.0)),
            ),
            (
                format!("{label}_sweep_p50_ms"),
                Json::Float(percentile_ms(&outcome.sweep_ms, 50.0)),
            ),
            (
                format!("{label}_sweep_p99_ms"),
                Json::Float(percentile_ms(&outcome.sweep_ms, 99.0)),
            ),
            (
                format!("{label}_connections_opened"),
                Json::Int(outcome.connections_opened as i128),
            ),
            (
                format!("{label}_requests_sent"),
                Json::Int(outcome.requests_sent as i128),
            ),
            (
                format!("{label}_requests_per_connection"),
                Json::Float(outcome.requests_per_connection()),
            ),
            (
                format!("{label}_connection_retries"),
                Json::Int(outcome.retries as i128),
            ),
            (
                format!("{label}_retry_after_waits"),
                Json::Int(outcome.backoff_waits as i128),
            ),
        ]
    };
    let warm_speedup = if warm.wall_seconds > 0.0 {
        cold.wall_seconds / warm.wall_seconds
    } else {
        0.0
    };
    let mut fields = vec![
        ("bench".into(), Json::Str("server-loadgen".into())),
        // v3: async sweep submission — submission latency (time to the
        // 202) and end-to-end sweep latency (submit → observed done) are
        // separate distributions; `requests` counts submissions + polls.
        // v4: per-phase `retry_after_waits` (jittered backoff after 429/503
        // refusals) and the `fleet_scaling` section (full-grid wall clock
        // under 1/2/4 remote workers with lease/requeue accounting).
        ("schema_version".into(), Json::Int(4)),
        ("created_unix".into(), Json::uint(lassi_bench::unix_now())),
        ("clients".into(), Json::Int(args.clients as i128)),
        (
            "sweeps_per_client_per_phase".into(),
            Json::Int(args.requests as i128),
        ),
        (
            "scenarios_per_sweep".into(),
            Json::Int(APPS_PER_REQUEST as i128),
        ),
        (
            "scenarios_per_phase".into(),
            Json::Int(scenarios_per_phase as i128),
        ),
        ("sweeps_per_phase".into(), Json::Int(cold.sweeps() as i128)),
    ];
    fields.extend(phase_fields("cold", cold));
    fields.extend(phase_fields("warm", warm));
    fields.extend([
        ("warm_speedup".into(), Json::Float(warm_speedup)),
        ("cold_cache_hits".into(), Json::uint(cold_hits)),
        ("cold_cache_misses".into(), Json::uint(cold_misses)),
        ("warm_cache_hits".into(), Json::uint(warm_hits)),
        ("warm_cache_misses".into(), Json::uint(warm_misses)),
        // The synchronous-API (schema v2) warm request latencies, for
        // before/after across the redesign: a v2 "request" covered both
        // submission and execution, comparable to v3 `submit` + `sweep`.
        (
            "baseline_sync_warm_p50_ms".into(),
            Json::Float(BASELINE_SYNC_WARM_P50_MS),
        ),
        (
            "baseline_sync_warm_p99_ms".into(),
            Json::Float(BASELINE_SYNC_WARM_P99_MS),
        ),
        (
            "fleet_scaling".into(),
            Json::Array(
                fleet_scaling
                    .iter()
                    .map(|scale| {
                        Json::Object(vec![
                            ("workers".into(), Json::Int(scale.workers as i128)),
                            ("scenarios".into(), Json::uint(scale.scenarios)),
                            ("wall_seconds".into(), Json::Float(scale.wall_seconds)),
                            (
                                "scenarios_per_second".into(),
                                Json::Float(scale.scenarios as f64 / scale.wall_seconds.max(1e-9)),
                            ),
                            ("leases_granted".into(), Json::uint(scale.leases_granted)),
                            ("leases_expired".into(), Json::uint(scale.leases_expired)),
                            ("jobs_requeued".into(), Json::uint(scale.jobs_requeued)),
                            (
                                "duplicate_completions".into(),
                                Json::uint(scale.duplicate_completions),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut text = Json::Object(fields).to_pretty();
    text.push('\n');
    std::fs::write(&args.out, text).map_err(|e| format!("cannot write {}: {e}", args.out))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&args) {
        eprintln!("loadgen: {message}");
        std::process::exit(1);
    }
}
