//! # lassi-bench
//!
//! Benchmark harness for the LASSI reproduction:
//!
//! * **table-regeneration binaries** (`cargo run -p lassi-bench --bin <name>
//!   --release`): `table4`, `table5`, `table6`, `table7`, `summary`,
//!   `prompts` and `case_studies` print the corresponding tables / statistics
//!   from the paper. The scenario-driven ones (`table4`, `table6`, `table7`,
//!   `summary`) run through the `lassi-harness` experiment service, save a
//!   JSON artifact under `artifacts/run-<id>/`, and accept
//!   `--replay <run-dir>` to re-render a saved artifact byte-identically
//!   without re-running anything.
//! * **`sweep`**: arbitrary config-grid sweeps (models × apps × directions ×
//!   `max_self_corrections` × `timing_runs`) with a persistent scenario
//!   cache; `sweep --smoke` is the self-checking CI entry point.
//! * **criterion benches** (`cargo bench -p lassi-bench`): `frontend`,
//!   `simulators` and `pipeline` measure the wall-clock cost of the
//!   front-end, the two execution substrates and the end-to-end pipeline.

use std::path::PathBuf;

use lassi_core::PipelineConfig;
use lassi_harness::{ArtifactStore, Harness, HarnessOptions, ScenarioCache};

/// Shared pipeline configuration used by every table binary so the numbers in
/// the tables are regenerated identically run-to-run.
pub fn default_config() -> PipelineConfig {
    PipelineConfig::default()
}

/// Format seconds the way the paper's tables do (four decimal places).
pub fn fmt_seconds(seconds: f64) -> String {
    format!("{seconds:.4}")
}

/// Flags shared by the harness-backed binaries.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// `--replay <run-dir>`: render from a saved artifact, run nothing.
    pub replay: Option<PathBuf>,
    /// `--artifacts <dir>`: artifact root (default `artifacts/`).
    pub artifacts: PathBuf,
    /// `--no-cache` disables the scenario cache; default is a disk cache at
    /// `<artifacts>/cache`.
    pub use_cache: bool,
    /// `--workers <n>`: worker threads (0 = all cores).
    pub workers: usize,
    /// Everything not consumed above, in order.
    pub rest: Vec<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            replay: None,
            artifacts: PathBuf::from("artifacts"),
            use_cache: true,
            workers: 0,
            rest: Vec::new(),
        }
    }
}

/// Parse the shared flags out of an argument list. Unrecognised arguments
/// are preserved in `rest` for the binary's own flags.
pub fn parse_common_args<I: IntoIterator<Item = String>>(args: I) -> Result<CommonArgs, String> {
    let mut parsed = CommonArgs::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--replay" => {
                let dir = iter.next().ok_or("--replay needs a run directory")?;
                parsed.replay = Some(PathBuf::from(dir));
            }
            "--artifacts" => {
                let dir = iter.next().ok_or("--artifacts needs a directory")?;
                parsed.artifacts = PathBuf::from(dir);
            }
            "--no-cache" => parsed.use_cache = false,
            "--workers" => {
                let n = iter.next().ok_or("--workers needs a count")?;
                parsed.workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            _ => parsed.rest.push(arg),
        }
    }
    Ok(parsed)
}

/// The artifact store the shared flags select.
pub fn artifact_store(common: &CommonArgs) -> ArtifactStore {
    ArtifactStore::new(&common.artifacts)
}

/// Build the experiment service the shared flags select (worker count plus
/// an optional disk cache under the artifact root).
pub fn build_harness(common: &CommonArgs) -> Result<Harness, String> {
    let options = HarnessOptions::default().with_workers(common.workers);
    let harness = Harness::new(options);
    if common.use_cache {
        let dir = artifact_store(common).cache_dir();
        let cache = ScenarioCache::on_disk(&dir)
            .map_err(|e| format!("cannot open scenario cache at {}: {e}", dir.display()))?;
        Ok(harness.with_cache(cache))
    } else {
        Ok(harness)
    }
}

/// Shared driver for `table6` / `table7`: run one direction sweep through
/// the harness and save an artifact, or `--replay` a saved one. Returns the
/// rendered table for stdout; progress notes go to stderr so replayed and
/// live output stay byte-comparable.
pub fn direction_table_bin(
    direction: lassi_core::Direction,
    run_id: &str,
    args: Vec<String>,
) -> Result<String, String> {
    use lassi_core::direction_table;

    let common = parse_common_args(args)?;
    if let Some(extra) = common.rest.first() {
        return Err(format!("unknown argument `{extra}`"));
    }
    let set = direction.slug();

    if let Some(dir) = &common.replay {
        let artifact = lassi_harness::RunArtifact::load(dir).map_err(|e| e.to_string())?;
        let records = artifact.records(set).map_err(|e| e.to_string())?;
        return Ok(direction_table(direction, &records));
    }

    let config = default_config();
    let harness = build_harness(&common)?;
    let models = lassi_llm::all_models();
    let apps = lassi_hecbench::applications();
    let records = harness.run_direction_with(direction, &config, &models, &apps);

    let outcomes = lassi_core::scenario_outcomes(&records);
    let stats = lassi_metrics::AggregateStats::from_outcomes(&outcomes);
    let snapshot = harness.cache_snapshot();

    let grid = lassi_harness::SweepGrid::single(config, models, apps, vec![direction]);
    let manifest = grid.manifest(run_id, vec![set.to_string()], records.len(), snapshot);

    let store = artifact_store(&common);
    // Fixed run id, intentionally regenerated on every invocation: replace
    // the previous run wholesale rather than merging files into it.
    let writer = store
        .create_or_replace_run(run_id)
        .map_err(|e| e.to_string())?;
    writer
        .write_manifest(&manifest)
        .map_err(|e| e.to_string())?;
    writer
        .write_records(set, &records)
        .map_err(|e| e.to_string())?;
    writer
        .write_summary(set, &stats)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "artifact saved to {} (cache: {} hits / {} misses); \
         re-render with --replay {0}",
        writer.dir().display(),
        snapshot.hits,
        snapshot.misses,
    );

    Ok(direction_table(direction, &records))
}

/// Seconds since the Unix epoch (artifact manifests, run ids).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_matches_table_style() {
        assert_eq!(fmt_seconds(1.24401), "1.2440");
        assert_eq!(fmt_seconds(0.0032), "0.0032");
    }

    #[test]
    fn default_config_is_reproducible() {
        assert_eq!(default_config().seed, PipelineConfig::default().seed);
    }

    #[test]
    fn common_args_parse_and_preserve_rest() {
        let args = [
            "--workers",
            "4",
            "--smoke",
            "--artifacts",
            "out",
            "--no-cache",
            "--models",
            "GPT-4",
        ]
        .map(String::from);
        let parsed = parse_common_args(args).unwrap();
        assert_eq!(parsed.workers, 4);
        assert_eq!(parsed.artifacts, PathBuf::from("out"));
        assert!(!parsed.use_cache);
        assert!(parsed.replay.is_none());
        assert_eq!(parsed.rest, vec!["--smoke", "--models", "GPT-4"]);
    }

    #[test]
    fn common_args_report_missing_values() {
        assert!(parse_common_args(["--replay".to_string()]).is_err());
        assert!(parse_common_args(["--workers".into(), "many".into()]).is_err());
    }
}
