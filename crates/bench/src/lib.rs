//! # lassi-bench
//!
//! Benchmark harness for the LASSI reproduction:
//!
//! * **table-regeneration binaries** (`cargo run -p lassi-bench --bin <name>
//!   --release`): `table4`, `table5`, `table6`, `table7`, `summary`,
//!   `prompts` and `case_studies` print the corresponding tables / statistics
//!   from the paper, regenerated on the simulated substrate.
//! * **criterion benches** (`cargo bench -p lassi-bench`): `frontend`,
//!   `simulators` and `pipeline` measure the wall-clock cost of the
//!   front-end, the two execution substrates and the end-to-end pipeline.

use lassi_core::PipelineConfig;

/// Shared pipeline configuration used by every table binary so the numbers in
/// EXPERIMENTS.md are regenerated identically run-to-run.
pub fn default_config() -> PipelineConfig {
    PipelineConfig::default()
}

/// Format seconds the way the paper's tables do (four decimal places).
pub fn fmt_seconds(seconds: f64) -> String {
    format!("{seconds:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_matches_table_style() {
        assert_eq!(fmt_seconds(1.24401), "1.2440");
        assert_eq!(fmt_seconds(0.0032), "0.0032");
    }

    #[test]
    fn default_config_is_reproducible() {
        assert_eq!(default_config().seed, PipelineConfig::default().seed);
    }
}
