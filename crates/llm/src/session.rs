//! The chat-style simulated LLM.
//!
//! [`SimulatedLlm`] exposes the same surface a hosted model exposes to the
//! LASSI pipeline — "here is a prompt, give me text back" — and implements it
//! with the translation engine plus profile-driven fault injection and
//! repair. The pipeline never looks inside: it extracts the code block from
//! the response, compiles it, runs it, and feeds errors back, exactly as it
//! would with GPT-4 or an Ollama-hosted model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lassi_lang::{parse, Dialect};

use crate::faults::{maybe_fault, sample_fault, Fault, FaultCategory};
use crate::models::ModelSpec;
use crate::prompts::extract_code_block;
use crate::tokenizer::count_tokens;
use crate::translate::translate_program;

/// A single completion returned by a model.
#[derive(Debug, Clone)]
pub struct LlmResponse {
    /// The full response text (the pipeline extracts the ``` code block).
    pub text: String,
    /// Approximate number of tokens in the prompt.
    pub prompt_tokens: usize,
    /// Approximate number of tokens in the response.
    pub response_tokens: usize,
    /// Whether the prompt exceeded the model's context window and had to be
    /// truncated (degrades quality, like the real thing).
    pub context_overflow: bool,
}

/// Anything that can play the LLM role in the pipeline.
pub trait ChatModel {
    /// The model's display name.
    fn name(&self) -> &str;
    /// The model's context window, in tokens.
    fn context_tokens(&self) -> usize;
    /// Produce a completion for `system_prompt` + `user_prompt`.
    fn complete(&mut self, system_prompt: &str, user_prompt: &str) -> LlmResponse;
}

struct SessionState {
    clean_source: String,
    faults: Vec<Fault>,
}

/// The simulated LLM: translation engine + capability profile + session state.
pub struct SimulatedLlm {
    model: ModelSpec,
    rng: StdRng,
    state: Option<SessionState>,
    last_translation_diagnostic: Option<lassi_lang::Diagnostic>,
}

impl SimulatedLlm {
    /// Create a simulated model with an explicit RNG seed (scenario-specific
    /// seeds make the whole 80-scenario evaluation reproducible).
    pub fn with_seed(model: ModelSpec, seed: u64) -> Self {
        SimulatedLlm {
            model,
            rng: StdRng::seed_from_u64(seed),
            state: None,
            last_translation_diagnostic: None,
        }
    }

    /// The model specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.model
    }

    /// Why the translation engine rejected the last source program, if it
    /// did: a coded diagnostic naming the offending construct
    /// (`llm/unsupported-construct`) or the front-end failure. `None` after
    /// a clean translation.
    pub fn last_translation_diagnostic(&self) -> Option<&lassi_lang::Diagnostic> {
        self.last_translation_diagnostic.as_ref()
    }

    /// Faults still present in the last generated code (test/diagnostic hook).
    pub fn active_fault_labels(&self) -> Vec<&'static str> {
        self.state
            .as_ref()
            .map_or_else(Vec::new, |s| s.faults.iter().map(|f| f.label()).collect())
    }

    fn render(&self) -> String {
        let Some(state) = &self.state else {
            return String::new();
        };
        let mut text = state.clean_source.clone();
        for fault in &state.faults {
            text = fault.apply(&text);
        }
        text
    }

    fn respond_with_code(&self, code: &str, prompt_tokens: usize, overflow: bool) -> LlmResponse {
        let text = format!("```\n{}\n```", code.trim_end());
        LlmResponse {
            response_tokens: count_tokens(&text),
            text,
            prompt_tokens,
            context_overflow: overflow,
        }
    }

    fn handle_translation(
        &mut self,
        user_prompt: &str,
        prompt_tokens: usize,
        overflow: bool,
    ) -> LlmResponse {
        let Some(source) = extract_code_block(user_prompt) else {
            return LlmResponse {
                text: "I could not find a code block to translate.".to_string(),
                prompt_tokens,
                response_tokens: 8,
                context_overflow: overflow,
            };
        };
        let source_dialect = detect_dialect(&source);
        let target = source_dialect.other();
        let parsed = parse(&source, source_dialect);
        self.last_translation_diagnostic = None;
        let translated_source = match parsed.and_then(|p| {
            translate_program(&p, target).map_err(|e| {
                // `e` names the offending construct ("unsupported construct:
                // reduction operator '&' is not supported", ...).
                lassi_lang::Diagnostic::error(0, e.to_string())
                    .with_code("llm/unsupported-construct")
            })
        }) {
            Ok(program) => lassi_lang::print_program(&program),
            Err(diagnostic) => {
                // The model "fails to understand" the program: it answers with
                // the original code lightly rearranged, which will never
                // compile in the target language. This is one of the N/A paths.
                // The coded diagnostic stays inspectable instead of vanishing.
                self.last_translation_diagnostic = Some(diagnostic);
                source.clone()
            }
        };

        // Inject profile-driven faults into the clean translation.
        let profile = self.model.profile;
        let mut faults: Vec<Fault> = Vec::new();
        if let Some(f) = maybe_fault(
            &translated_source,
            FaultCategory::Compile,
            profile.p_compile_fault,
            &mut self.rng,
        ) {
            faults.push(f);
        }
        // A second, independent compile slip is possible for weaker models.
        if let Some(f) = maybe_fault(
            &translated_source,
            FaultCategory::Compile,
            profile.p_compile_fault * 0.35,
            &mut self.rng,
        ) {
            faults.push(f);
        }
        if let Some(f) = maybe_fault(
            &translated_source,
            FaultCategory::Runtime,
            profile.p_runtime_fault,
            &mut self.rng,
        ) {
            faults.push(f);
        }
        let semantic_p = if overflow {
            // Truncated context: the model loses part of the program.
            (profile.p_semantic_fault * 3.0).min(0.95)
        } else {
            profile.p_semantic_fault
        };
        if let Some(f) = maybe_fault(
            &translated_source,
            FaultCategory::Semantic,
            semantic_p,
            &mut self.rng,
        ) {
            faults.push(f);
        }
        if let Some(f) = maybe_fault(
            &translated_source,
            FaultCategory::Performance,
            profile.p_perf_regression,
            &mut self.rng,
        ) {
            faults.push(f);
        }

        self.state = Some(SessionState {
            clean_source: translated_source,
            faults,
        });
        let rendered = self.render();
        self.respond_with_code(&rendered, prompt_tokens, overflow)
    }

    fn handle_correction(
        &mut self,
        user_prompt: &str,
        prompt_tokens: usize,
        overflow: bool,
    ) -> LlmResponse {
        let is_execution_error = user_prompt.contains("execution error");
        let profile = self.model.profile;

        if self.state.is_none() {
            // The model is asked to fix code it never produced (e.g. the
            // pipeline was driven manually); adopt the code from the prompt.
            if let Some(code) = extract_code_block(user_prompt) {
                self.state = Some(SessionState {
                    clean_source: code,
                    faults: Vec::new(),
                });
            }
        }

        let repair_succeeds = self.rng.gen_bool(profile.p_repair_success);
        let introduces_new = self.rng.gen_bool(profile.p_repair_regression);

        if let Some(state) = &mut self.state {
            if repair_succeeds && !state.faults.is_empty() {
                // Prefer fixing a fault of the category the error message is about.
                let preferred = if is_execution_error {
                    [
                        FaultCategory::Runtime,
                        FaultCategory::Semantic,
                        FaultCategory::Compile,
                    ]
                } else {
                    [
                        FaultCategory::Compile,
                        FaultCategory::Runtime,
                        FaultCategory::Semantic,
                    ]
                };
                let idx = preferred
                    .iter()
                    .find_map(|cat| state.faults.iter().position(|f| f.category == *cat))
                    .unwrap_or(0);
                state.faults.remove(idx);
            }
            if introduces_new {
                let clean = state.clean_source.clone();
                if let Some(f) = sample_fault(&clean, FaultCategory::Compile, &mut self.rng) {
                    state.faults.push(f);
                }
            }
        }

        let rendered = self.render();
        self.respond_with_code(&rendered, prompt_tokens, overflow)
    }

    fn handle_description(&mut self, user_prompt: &str, prompt_tokens: usize) -> LlmResponse {
        let text = match extract_code_block(user_prompt) {
            Some(code) => {
                let dialect = detect_dialect(&code);
                let kernels = code.matches("__global__").count();
                let pragmas = code.matches("#pragma omp").count();
                let lines = code.lines().count();
                format!(
                    "This is a {lines}-line {} program. It allocates its working buffers, initializes \
them on the host, and performs its main computation using {} before printing checksum values with \
printf. The parallel work iterates over the problem size with a guarded global index.",
                    dialect.display_name(),
                    if dialect == Dialect::CudaLite {
                        format!("{kernels} CUDA kernel(s) launched with explicit grid/block geometry")
                    } else {
                        format!("{pragmas} OpenMP target offload region(s)")
                    }
                )
            }
            None => "The prompt did not include a program to describe.".to_string(),
        };
        LlmResponse {
            response_tokens: count_tokens(&text),
            text,
            prompt_tokens,
            context_overflow: false,
        }
    }

    fn handle_knowledge_summary(&mut self, user_prompt: &str, prompt_tokens: usize) -> LlmResponse {
        let target = if user_prompt.contains("CUDA programming model") {
            Dialect::CudaLite
        } else {
            Dialect::OmpLite
        };
        let text = match target {
            Dialect::CudaLite => "Key points: kernels are __global__ void functions launched as \
kernel<<<(N + 255) / 256, 256>>>(...); compute the global index from blockIdx, blockDim and \
threadIdx and guard it against N; manage device memory with cudaMalloc/cudaMemcpy/cudaFree; \
synchronize with cudaDeviceSynchronize; use atomicAdd for concurrent updates."
                .to_string(),
            Dialect::OmpLite => {
                "Key points: offload loops with #pragma omp target teams distribute parallel for; \
move data with map(to:/from:/tofrom:) array sections or keep it resident with target data; use \
reduction(+:var) for sums, schedule(static) for regular loops, and #pragma omp atomic for \
concurrent updates; bound parallelism with num_teams/thread_limit."
                    .to_string()
            }
        };
        LlmResponse {
            response_tokens: count_tokens(&text),
            text,
            prompt_tokens,
            context_overflow: false,
        }
    }
}

/// Guess which dialect a piece of source text is written in.
pub fn detect_dialect(source: &str) -> Dialect {
    if source.contains("#pragma omp") {
        Dialect::OmpLite
    } else {
        Dialect::CudaLite
    }
}

impl ChatModel for SimulatedLlm {
    fn name(&self) -> &str {
        self.model.name
    }

    fn context_tokens(&self) -> usize {
        self.model.context_tokens
    }

    fn complete(&mut self, system_prompt: &str, user_prompt: &str) -> LlmResponse {
        let prompt_tokens = count_tokens(system_prompt) + count_tokens(user_prompt);
        let overflow = prompt_tokens > self.model.context_tokens;

        if user_prompt.contains("Summarize the following programming language reference") {
            return self.handle_knowledge_summary(user_prompt, prompt_tokens);
        }
        if user_prompt.contains("Describe what the following program computes") {
            return self.handle_description(user_prompt, prompt_tokens);
        }
        if user_prompt.contains("Re-factor the above code with a fix") {
            return self.handle_correction(user_prompt, prompt_tokens, overflow);
        }
        if user_prompt.contains("Generate new code to refactor") {
            return self.handle_translation(user_prompt, prompt_tokens, overflow);
        }
        LlmResponse {
            text: "Please provide a program to translate.".to_string(),
            prompt_tokens,
            response_tokens: 7,
            context_overflow: overflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{all_models, gpt4};
    use crate::prompts;
    use crate::prompts::PromptDictionary;

    const CUDA_SRC: &str = r#"
__global__ void scale(float* out, const float* in, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = 2.0 * in[i]; }
}
int main() {
    int n = 64;
    float* h_in = (float*)malloc(n * sizeof(float));
    float* h_out = (float*)malloc(n * sizeof(float));
    for (int i = 0; i < n; i++) { h_in[i] = i; }
    float* d_in;
    float* d_out;
    cudaMalloc(&d_in, n * sizeof(float));
    cudaMalloc(&d_out, n * sizeof(float));
    cudaMemcpy(d_in, h_in, n * sizeof(float), cudaMemcpyHostToDevice);
    scale<<<(n + 255) / 256, 256>>>(d_out, d_in, n);
    cudaDeviceSynchronize();
    cudaMemcpy(h_out, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
    double sum = 0.0;
    for (int i = 0; i < n; i++) { sum += h_out[i]; }
    printf("sum %.1f\n", sum);
    return 0;
}
"#;

    fn translation_prompt() -> String {
        PromptDictionary::build_translation_prompt(
            Dialect::CudaLite,
            Dialect::OmpLite,
            "summary",
            "a vector scaling benchmark",
            CUDA_SRC,
        )
    }

    #[test]
    fn translation_response_contains_openmp_code_block() {
        let mut llm = SimulatedLlm::with_seed(gpt4(), 3);
        let resp = llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt());
        let code = extract_code_block(&resp.text).expect("code block");
        assert!(code.contains("#pragma omp") || code.contains("__global__"));
        assert!(resp.prompt_tokens > 100);
        assert!(!resp.context_overflow);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimulatedLlm::with_seed(gpt4(), 42);
        let mut b = SimulatedLlm::with_seed(gpt4(), 42);
        let ra = a.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt());
        let rb = b.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt());
        assert_eq!(ra.text, rb.text);
    }

    #[test]
    fn different_seeds_can_differ() {
        let outputs: Vec<String> = (0..16)
            .map(|seed| {
                let mut llm = SimulatedLlm::with_seed(all_models()[1].clone(), seed);
                llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt())
                    .text
            })
            .collect();
        let unique: std::collections::HashSet<&String> = outputs.iter().collect();
        assert!(unique.len() > 1, "fault injection should vary across seeds");
    }

    #[test]
    fn correction_prompt_makes_progress() {
        // Use a seed/profile that injects at least one fault, then check that
        // repeated corrections eventually reproduce the clean translation.
        let mut llm = SimulatedLlm::with_seed(all_models()[1].clone(), 11);
        let first = llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt());
        let mut code = extract_code_block(&first.text).unwrap();
        for _ in 0..40 {
            if llm.active_fault_labels().is_empty() {
                break;
            }
            let prompt = PromptDictionary::build_compile_correction_prompt(
                &code,
                "clang++ -O3 -fopenmp",
                "error: use of undeclared identifier",
            );
            let resp = llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &prompt);
            code = extract_code_block(&resp.text).unwrap();
        }
        assert!(
            llm.active_fault_labels().is_empty(),
            "faults remain: {:?}",
            llm.active_fault_labels()
        );
    }

    #[test]
    fn description_and_summary_requests_answered() {
        let mut llm = SimulatedLlm::with_seed(gpt4(), 5);
        let desc = llm.complete(
            prompts::SYSTEM_GENERAL,
            &PromptDictionary::build_code_description_prompt(CUDA_SRC),
        );
        assert!(desc.text.contains("CUDA kernel"));
        let summary = llm.complete(
            prompts::SYSTEM_GENERAL,
            &PromptDictionary::build_knowledge_summary_prompt(Dialect::CudaLite),
        );
        assert!(summary.text.contains("cudaMalloc"));
    }

    #[test]
    fn rejected_translation_leaves_a_coded_diagnostic() {
        // A program with no main: the translation engine refuses it, the
        // model answers with the untranslated source, and the refusal stays
        // inspectable as a coded diagnostic naming the offending construct.
        let src = "__global__ void k(float* a) { a[0] = 1.0; }";
        let prompt = PromptDictionary::build_translation_prompt(
            Dialect::CudaLite,
            Dialect::OmpLite,
            "summary",
            "a kernel with no driver",
            src,
        );
        let mut llm = SimulatedLlm::with_seed(gpt4(), 3);
        let resp = llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &prompt);
        let code = extract_code_block(&resp.text).unwrap();
        assert!(code.contains("__global__"), "untranslated source echoed");
        let diag = llm
            .last_translation_diagnostic()
            .expect("refusal diagnostic");
        assert_eq!(diag.code, "llm/unsupported-construct");
        assert!(
            diag.message.contains("no main function"),
            "{}",
            diag.message
        );
        // A clean translation clears it.
        let resp = llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt());
        assert!(extract_code_block(&resp.text).is_some());
        assert!(llm.last_translation_diagnostic().is_none());
    }

    #[test]
    fn detect_dialect_heuristics() {
        assert_eq!(detect_dialect("#pragma omp parallel for"), Dialect::OmpLite);
        assert_eq!(detect_dialect("__global__ void k()"), Dialect::CudaLite);
    }

    #[test]
    fn context_overflow_is_flagged() {
        let mut tiny = gpt4();
        tiny.context_tokens = 50;
        let mut llm = SimulatedLlm::with_seed(tiny, 9);
        let resp = llm.complete(prompts::SYSTEM_CUDA_TO_OPENMP, &translation_prompt());
        assert!(resp.context_overflow);
    }
}
