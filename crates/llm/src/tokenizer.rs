//! Approximate tokenizer.
//!
//! LASSI only needs token counts for two things: checking that a constructed
//! prompt fits each model's context window (Table V) and tokenizing code for
//! the Sim-T similarity metric. A simple word/punctuation splitter with a
//! sub-word heuristic tracks real BPE tokenizers closely enough for both.

/// Split text into tokens the way the similarity metric expects: identifiers
/// and numbers are single tokens, every punctuation character is its own
/// token, whitespace separates.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            current.push(c);
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Approximate the number of LLM tokens in `text`.
///
/// Long identifiers and string fragments are counted as multiple sub-word
/// tokens (one per 4 characters), matching the common "~4 characters per
/// token" rule of thumb for code-heavy text.
pub fn count_tokens(text: &str) -> usize {
    tokenize(text)
        .iter()
        .map(|t| {
            if t.chars().count() <= 4 {
                1
            } else {
                t.chars().count().div_ceil(4)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_code_line() {
        let toks = tokenize("out[i] = a[i] + b[i];");
        assert_eq!(
            toks,
            vec!["out", "[", "i", "]", "=", "a", "[", "i", "]", "+", "b", "[", "i", "]", ";"]
        );
    }

    #[test]
    fn count_scales_with_length() {
        let short = count_tokens("int x = 1;");
        let long = count_tokens(&"int x = 1;\n".repeat(100));
        assert!(long > short * 50);
    }

    #[test]
    fn long_identifiers_cost_more() {
        assert!(count_tokens("extraordinarily_long_identifier_name") > 1);
        assert_eq!(count_tokens("i"), 1);
    }

    #[test]
    fn empty_text_has_no_tokens() {
        assert_eq!(count_tokens(""), 0);
        assert!(tokenize("   \n\t ").is_empty());
    }
}
