//! # lassi-llm
//!
//! The simulated LLM substrate used by the LASSI pipeline reproduction.
//!
//! The paper drives four real models (GPT-4, Codestral 22B, Wizard Coder 33B
//! and DeepSeek Coder v2 16B) through Ollama / an API. Those models are not
//! available here, so this crate provides a **deterministic simulated LLM**
//! with the same interface the pipeline needs:
//!
//! * [`tokenizer`] — approximate token counting, used to enforce each model's
//!   context window (Table V) and to build the Sim-T similarity metric,
//! * [`prompts`] — the prompt dictionary: system prompts (Table I),
//!   translation prompts (Table II), self-correction prompts (Table III) and
//!   the programming-language knowledge passages,
//! * [`models`] — the four model configurations with per-model *capability
//!   profiles* that control how often the simulated model slips,
//! * [`translate`] — a real AST-level CUDA ↔ OpenMP translation engine (the
//!   "competent" core of the simulated model),
//! * [`faults`] — the fault classes the simulated model can inject into an
//!   otherwise correct translation (syntax slips, wrong API names, missing
//!   declarations, out-of-bounds indexing, serialization, restructuring, ...),
//! * [`session`] — [`session::SimulatedLlm`], the chat-style wrapper that
//!   receives prompt text, extracts the code block, translates, injects
//!   profile-driven faults, and on correction prompts repairs (or fails to
//!   repair) them — reproducing the behaviour the LASSI self-correcting loops
//!   are designed to handle.

pub mod faults;
pub mod models;
pub mod prompts;
pub mod session;
pub mod tokenizer;
pub mod translate;

pub use faults::{Fault, FaultKind};
pub use models::{
    all_models, codestral, deepseek_coder, gpt4, model_by_name, wizard_coder, CapabilityProfile,
    ModelSpec,
};
pub use prompts::PromptDictionary;
pub use session::{ChatModel, LlmResponse, SimulatedLlm};
pub use tokenizer::count_tokens;
pub use translate::{translate_program, TranslationError};

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_lang::{parse, Dialect};

    #[test]
    fn translate_round_trip_produces_other_dialect() {
        let cuda = r#"
        __global__ void scale(float* out, const float* in, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = 2.0 * in[i]; }
        }
        int main() {
            int n = 256;
            float* h_in = (float*)malloc(n * sizeof(float));
            float* h_out = (float*)malloc(n * sizeof(float));
            for (int i = 0; i < n; i++) { h_in[i] = i; }
            float* d_in;
            float* d_out;
            cudaMalloc(&d_in, n * sizeof(float));
            cudaMalloc(&d_out, n * sizeof(float));
            cudaMemcpy(d_in, h_in, n * sizeof(float), cudaMemcpyHostToDevice);
            scale<<<(n + 255) / 256, 256>>>(d_out, d_in, n);
            cudaDeviceSynchronize();
            cudaMemcpy(h_out, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
            double sum = 0.0;
            for (int i = 0; i < n; i++) { sum += h_out[i]; }
            printf("sum %.1f\n", sum);
            free(h_in);
            free(h_out);
            return 0;
        }
        "#;
        let program = parse(cuda, Dialect::CudaLite).unwrap();
        let translated = translate_program(&program, Dialect::OmpLite).unwrap();
        assert_eq!(translated.dialect, Dialect::OmpLite);
        let printed = lassi_lang::print_program(&translated);
        assert!(printed.contains("#pragma omp target teams distribute parallel for"));
        assert!(!printed.contains("cudaMalloc"));
        // The translated program must compile.
        lassi_sema::compile(&translated).expect("translated program compiles");
    }
}
