//! The AST-level CUDA ↔ OpenMP translation engine.
//!
//! This is the "competent core" of the simulated LLM: given a parsed ParC
//! program in one dialect it produces an equivalent program in the other
//! dialect, using the same strategies a careful human (or a good model) uses:
//!
//! * **CUDA → OpenMP**: each `kernel<<<grid, block>>>(...)` launch becomes a
//!   `#pragma omp target teams distribute parallel for` loop over the guarded
//!   index range, with `map` clauses derived from how each buffer is used;
//!   `cudaMalloc`/`cudaMemcpy`/`cudaFree` become `malloc`/`memcpy`/`free`;
//!   `atomicAdd` becomes `#pragma omp atomic`.
//! * **OpenMP → CUDA**: each work-sharing loop is outlined into a fresh
//!   `__global__` kernel; mapped buffers get `cudaMalloc`/`cudaMemcpy`
//!   staging, reductions are rewritten to `atomicAdd` on a staged scalar, and
//!   the launch uses the conventional `(N + 255) / 256 × 256` geometry.
//!
//! Programs that fall outside the supported patterns produce a
//! [`TranslationError`]; the simulated LLM turns those into the kinds of
//! unrecoverable failures the paper reports as N/A.

use std::collections::HashMap;
use std::fmt;

use lassi_lang::{
    AssignOp, BinOp, Block, Dialect, Expr, FnQualifier, ForStmt, Function, Item, KernelLaunch,
    MapKind, MapSection, OmpClause, OmpDirective, OmpDirectiveKind, Param, PragmaStmt, Program,
    ReductionOp, ScheduleKind, Stmt, StmtKind, Type, VarDecl,
};

/// Why a translation could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslationError {
    /// The construct is outside the supported translation patterns.
    Unsupported(String),
}

impl fmt::Display for TranslationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
        }
    }
}

impl std::error::Error for TranslationError {}

/// Translate `program` into `target` dialect.
pub fn translate_program(program: &Program, target: Dialect) -> Result<Program, TranslationError> {
    if program.dialect == target {
        return Ok(program.clone());
    }
    match (program.dialect, target) {
        (Dialect::CudaLite, Dialect::OmpLite) => cuda_to_omp(program),
        (Dialect::OmpLite, Dialect::CudaLite) => omp_to_cuda(program),
        _ => unreachable!("dialects are a two-element set"),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn subst_expr(expr: &Expr, map: &HashMap<String, Expr>) -> Expr {
    match expr {
        Expr::Ident(name) => map.get(name).cloned().unwrap_or_else(|| expr.clone()),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(subst_expr(lhs, map)),
            rhs: Box::new(subst_expr(rhs, map)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(subst_expr(operand, map)),
        },
        Expr::Call { callee, args } => Expr::Call {
            callee: callee.clone(),
            args: args.iter().map(|a| subst_expr(a, map)).collect(),
        },
        Expr::Index { base, index } => Expr::Index {
            base: Box::new(subst_expr(base, map)),
            index: Box::new(subst_expr(index, map)),
        },
        Expr::Member { base, field } => Expr::Member {
            base: Box::new(subst_expr(base, map)),
            field: field.clone(),
        },
        Expr::Cast { ty, expr } => Expr::Cast {
            ty: ty.clone(),
            expr: Box::new(subst_expr(expr, map)),
        },
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => Expr::Ternary {
            cond: Box::new(subst_expr(cond, map)),
            then_expr: Box::new(subst_expr(then_expr, map)),
            else_expr: Box::new(subst_expr(else_expr, map)),
        },
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) | Expr::Sizeof(_) => expr.clone(),
    }
}

fn subst_block(block: &Block, map: &HashMap<String, Expr>) -> Block {
    Block {
        stmts: block.stmts.iter().map(|s| subst_stmt(s, map)).collect(),
    }
}

fn subst_stmt(stmt: &Stmt, map: &HashMap<String, Expr>) -> Stmt {
    let kind = match &stmt.kind {
        StmtKind::VarDecl(d) => StmtKind::VarDecl(VarDecl {
            name: d.name.clone(),
            ty: d.ty.clone(),
            init: d.init.as_ref().map(|e| subst_expr(e, map)),
            array_len: d.array_len.as_ref().map(|e| subst_expr(e, map)),
            is_const: d.is_const,
            is_shared: d.is_shared,
        }),
        StmtKind::Assign { target, op, value } => StmtKind::Assign {
            target: subst_expr(target, map),
            op: *op,
            value: subst_expr(value, map),
        },
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => StmtKind::If {
            cond: subst_expr(cond, map),
            then_branch: subst_block(then_branch, map),
            else_branch: else_branch.as_ref().map(|b| subst_block(b, map)),
        },
        StmtKind::For(f) => StmtKind::For(ForStmt {
            init: f.init.as_ref().map(|s| Box::new(subst_stmt(s, map))),
            cond: f.cond.as_ref().map(|e| subst_expr(e, map)),
            step: f.step.as_ref().map(|s| Box::new(subst_stmt(s, map))),
            body: subst_block(&f.body, map),
        }),
        StmtKind::While { cond, body } => StmtKind::While {
            cond: subst_expr(cond, map),
            body: subst_block(body, map),
        },
        StmtKind::Return(v) => StmtKind::Return(v.as_ref().map(|e| subst_expr(e, map))),
        StmtKind::Break => StmtKind::Break,
        StmtKind::Continue => StmtKind::Continue,
        StmtKind::Expr(e) => StmtKind::Expr(subst_expr(e, map)),
        StmtKind::Block(b) => StmtKind::Block(subst_block(b, map)),
        StmtKind::KernelLaunch(l) => StmtKind::KernelLaunch(KernelLaunch {
            kernel: l.kernel.clone(),
            grid: subst_expr(&l.grid, map),
            block: subst_expr(&l.block, map),
            args: l.args.iter().map(|a| subst_expr(a, map)).collect(),
        }),
        StmtKind::Pragma(p) => StmtKind::Pragma(PragmaStmt {
            directive: p.directive.clone(),
            body: p.body.as_ref().map(|s| Box::new(subst_stmt(s, map))),
        }),
    };
    Stmt::new(kind, stmt.line)
}

/// Extract `X` from a byte-size expression of the form `X * sizeof(T)` or
/// `sizeof(T) * X`; otherwise return `bytes / sizeof(elem)`.
fn element_count_from_bytes(bytes: &Expr, elem: &Type) -> Expr {
    match bytes {
        Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
        } => {
            if matches!(rhs.as_ref(), Expr::Sizeof(_)) {
                return lhs.as_ref().clone();
            }
            if matches!(lhs.as_ref(), Expr::Sizeof(_)) {
                return rhs.as_ref().clone();
            }
            Expr::bin(BinOp::Div, bytes.clone(), Expr::Sizeof(elem.clone()))
        }
        Expr::Sizeof(_) => Expr::int(1),
        other => Expr::bin(BinOp::Div, other.clone(), Expr::Sizeof(elem.clone())),
    }
}

/// Collect names written through a subscript (`x[i] = ...`, `x[i] += ...`,
/// `atomicAdd(x ...)`) anywhere in a block.
fn collect_written_pointers(block: &Block, out: &mut Vec<String>) {
    fn base_name(e: &Expr) -> Option<String> {
        match e {
            Expr::Ident(n) => Some(n.clone()),
            Expr::Index { base, .. } => base_name(base),
            Expr::Binary { lhs, .. } => base_name(lhs),
            Expr::Unary { operand, .. } => base_name(operand),
            _ => None,
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::Assign {
                target: Expr::Index { base, .. },
                ..
            } => {
                if let Some(n) = base_name(base) {
                    out.push(n);
                }
            }
            StmtKind::Expr(Expr::Call { callee, args }) if callee.starts_with("atomic") => {
                if let Some(first) = args.first() {
                    if let Some(n) = base_name(first) {
                        out.push(n);
                    }
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_written_pointers(then_branch, out);
                if let Some(e) = else_branch {
                    collect_written_pointers(e, out);
                }
            }
            StmtKind::For(f) => collect_written_pointers(&f.body, out),
            StmtKind::While { body, .. } => collect_written_pointers(body, out),
            StmtKind::Block(b) => collect_written_pointers(b, out),
            StmtKind::Pragma(p) => {
                if let Some(body) = &p.body {
                    walk_stmt(body, out);
                }
            }
            _ => {}
        }
    }
    for s in &block.stmts {
        walk_stmt(s, out);
    }
}

/// Collect every identifier referenced in a block.
fn collect_block_idents(block: &Block, out: &mut Vec<String>) {
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::VarDecl(d) => {
                if let Some(e) = &d.init {
                    e.collect_idents(out);
                }
                if let Some(e) = &d.array_len {
                    e.collect_idents(out);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                target.collect_idents(out);
                value.collect_idents(out);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.collect_idents(out);
                collect_block_idents(then_branch, out);
                if let Some(e) = else_branch {
                    collect_block_idents(e, out);
                }
            }
            StmtKind::For(f) => {
                if let Some(init) = &f.init {
                    walk_stmt(init, out);
                }
                if let Some(c) = &f.cond {
                    c.collect_idents(out);
                }
                if let Some(step) = &f.step {
                    walk_stmt(step, out);
                }
                collect_block_idents(&f.body, out);
            }
            StmtKind::While { cond, body } => {
                cond.collect_idents(out);
                collect_block_idents(body, out);
            }
            StmtKind::Return(Some(e)) | StmtKind::Expr(e) => e.collect_idents(out),
            StmtKind::Block(b) => collect_block_idents(b, out),
            StmtKind::KernelLaunch(l) => {
                l.grid.collect_idents(out);
                l.block.collect_idents(out);
                for a in &l.args {
                    a.collect_idents(out);
                }
            }
            StmtKind::Pragma(p) => {
                if let Some(body) = &p.body {
                    walk_stmt(body, out);
                }
            }
            _ => {}
        }
    }
    for s in &block.stmts {
        walk_stmt(s, out);
    }
}

/// Collect names declared directly inside a block (any nesting level).
fn collect_declared_names(block: &Block, out: &mut Vec<String>) {
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::VarDecl(d) => out.push(d.name.clone()),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_declared_names(then_branch, out);
                if let Some(e) = else_branch {
                    collect_declared_names(e, out);
                }
            }
            StmtKind::For(f) => {
                if let Some(init) = &f.init {
                    walk_stmt(init, out);
                }
                collect_declared_names(&f.body, out);
            }
            StmtKind::While { body, .. } => collect_declared_names(body, out),
            StmtKind::Block(b) => collect_declared_names(b, out),
            StmtKind::Pragma(p) => {
                if let Some(body) = &p.body {
                    walk_stmt(body, out);
                }
            }
            _ => {}
        }
    }
    for s in &block.stmts {
        walk_stmt(s, out);
    }
}

/// Scan a function body for declared variable types (flat view; good enough
/// for the benchmark programs, which declare everything in `main`'s scope).
fn scan_types(func: &Function) -> HashMap<String, Type> {
    let mut out: HashMap<String, Type> = HashMap::new();
    for p in &func.params {
        out.insert(p.name.clone(), p.ty.clone());
    }
    fn walk(block: &Block, out: &mut HashMap<String, Type>) {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::VarDecl(d) => {
                    let ty = if d.array_len.is_some() {
                        d.ty.clone().ptr()
                    } else {
                        d.ty.clone()
                    };
                    out.insert(d.name.clone(), ty);
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    if let Some(e) = else_branch {
                        walk(e, out);
                    }
                }
                StmtKind::For(f) => {
                    if let Some(init) = &f.init {
                        if let StmtKind::VarDecl(d) = &init.kind {
                            out.insert(d.name.clone(), d.ty.clone());
                        }
                    }
                    walk(&f.body, out);
                }
                StmtKind::While { body, .. } => walk(body, out),
                StmtKind::Block(b) => walk(b, out),
                StmtKind::Pragma(p) => {
                    if let Some(body) = &p.body {
                        if let StmtKind::For(f) = &body.kind {
                            if let Some(init) = &f.init {
                                if let StmtKind::VarDecl(d) = &init.kind {
                                    out.insert(d.name.clone(), d.ty.clone());
                                }
                            }
                            walk(&f.body, out);
                        } else if let StmtKind::Block(b) = &body.kind {
                            walk(b, out);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    walk(&func.body, &mut out);
    out
}

/// Find the element count of the allocation bound to `name` inside a block
/// (from `T* name = (T*)malloc(X * sizeof(T))`, `name = (T*)malloc(...)`, or
/// `T name[X]` declarations).
fn find_allocation_count(block: &Block, name: &str, elem: &Type) -> Option<Expr> {
    fn from_init(init: &Expr, elem: &Type) -> Option<Expr> {
        match init {
            Expr::Cast { expr, .. } => from_init(expr, elem),
            Expr::Call { callee, args } if callee == "malloc" => {
                args.first().map(|b| element_count_from_bytes(b, elem))
            }
            _ => None,
        }
    }
    fn walk(block: &Block, name: &str, elem: &Type) -> Option<Expr> {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::VarDecl(d) if d.name == name => {
                    if let Some(len) = &d.array_len {
                        return Some(len.clone());
                    }
                    if let Some(init) = &d.init {
                        if let Some(c) = from_init(init, elem) {
                            return Some(c);
                        }
                    }
                }
                StmtKind::Assign {
                    target: Expr::Ident(n),
                    value,
                    ..
                } if n == name => {
                    if let Some(c) = from_init(value, elem) {
                        return Some(c);
                    }
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    if let Some(c) = walk(then_branch, name, elem) {
                        return Some(c);
                    }
                    if let Some(e) = else_branch {
                        if let Some(c) = walk(e, name, elem) {
                            return Some(c);
                        }
                    }
                }
                StmtKind::For(f) => {
                    if let Some(c) = walk(&f.body, name, elem) {
                        return Some(c);
                    }
                }
                StmtKind::Block(b) => {
                    if let Some(c) = walk(b, name, elem) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        None
    }
    walk(block, name, elem)
}

// ---------------------------------------------------------------------------
// CUDA → OpenMP
// ---------------------------------------------------------------------------

struct CudaToOmp<'p> {
    program: &'p Program,
    /// Device pointer name → byte-size expression from its `cudaMalloc`.
    device_allocs: HashMap<String, Expr>,
    /// Declared types inside `main`.
    types: HashMap<String, Type>,
}

fn cuda_to_omp(program: &Program) -> Result<Program, TranslationError> {
    let main = program
        .main()
        .ok_or_else(|| TranslationError::Unsupported("program has no main function".into()))?;

    let mut device_allocs = HashMap::new();
    scan_cuda_mallocs(&main.body, &mut device_allocs);

    let ctx = CudaToOmp {
        program,
        device_allocs,
        types: scan_types(main),
    };

    let mut out = Program::new(Dialect::OmpLite);
    for item in &program.items {
        let f = item.as_function();
        match f.qualifier {
            FnQualifier::Kernel => {} // kernels are inlined at their launch sites
            FnQualifier::Device => {
                // Device helpers become ordinary host functions.
                let mut host = f.clone();
                host.qualifier = FnQualifier::Host;
                out.items.push(Item::Function(host));
            }
            FnQualifier::Host => {
                let mut new_fn = f.clone();
                if f.name == "main" {
                    new_fn.body = ctx.rewrite_host_block(&f.body)?;
                }
                out.items.push(Item::Function(new_fn));
            }
        }
    }
    Ok(out)
}

fn scan_cuda_mallocs(block: &Block, out: &mut HashMap<String, Expr>) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::Expr(Expr::Call { callee, args }) if callee == "cudaMalloc" => {
                if let (Some(Expr::Unary { operand, .. }), Some(bytes)) =
                    (args.first(), args.get(1))
                {
                    if let Expr::Ident(name) = operand.as_ref() {
                        out.insert(name.clone(), bytes.clone());
                    }
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                scan_cuda_mallocs(then_branch, out);
                if let Some(e) = else_branch {
                    scan_cuda_mallocs(e, out);
                }
            }
            StmtKind::For(f) => scan_cuda_mallocs(&f.body, out),
            StmtKind::While { body, .. } => scan_cuda_mallocs(body, out),
            StmtKind::Block(b) => scan_cuda_mallocs(b, out),
            _ => {}
        }
    }
}

impl<'p> CudaToOmp<'p> {
    fn rewrite_host_block(&self, block: &Block) -> Result<Block, TranslationError> {
        let mut stmts = Vec::with_capacity(block.stmts.len());
        for stmt in &block.stmts {
            self.rewrite_host_stmt(stmt, &mut stmts)?;
        }
        Ok(Block { stmts })
    }

    fn rewrite_host_stmt(&self, stmt: &Stmt, out: &mut Vec<Stmt>) -> Result<(), TranslationError> {
        match &stmt.kind {
            // dim3 declarations have no OpenMP equivalent; launch geometry is
            // recomputed from the guard bound.
            StmtKind::VarDecl(d) if d.ty == Type::Dim3 => Ok(()),
            StmtKind::Expr(Expr::Call { callee, args }) => {
                match callee.as_str() {
                    "cudaDeviceSynchronize" => Ok(()),
                    "cudaMalloc" => {
                        // float* d_x; cudaMalloc(&d_x, B)  →  d_x = (float*)malloc(B);
                        if let (Some(Expr::Unary { operand, .. }), Some(bytes)) =
                            (args.first(), args.get(1))
                        {
                            if let Expr::Ident(name) = operand.as_ref() {
                                let ptr_ty = self
                                    .types
                                    .get(name)
                                    .cloned()
                                    .unwrap_or_else(|| Type::Double.ptr());
                                out.push(Stmt::new(
                                    StmtKind::Assign {
                                        target: Expr::ident(name.clone()),
                                        op: AssignOp::Assign,
                                        value: Expr::Cast {
                                            ty: ptr_ty,
                                            expr: Box::new(Expr::call(
                                                "malloc",
                                                vec![bytes.clone()],
                                            )),
                                        },
                                    },
                                    stmt.line,
                                ));
                            }
                        }
                        Ok(())
                    }
                    "cudaMemcpy" => {
                        // Becomes a host memcpy (keeps functional equivalence).
                        let new_args: Vec<Expr> = args.iter().take(3).cloned().collect();
                        out.push(Stmt::new(
                            StmtKind::Expr(Expr::call("memcpy", new_args)),
                            stmt.line,
                        ));
                        Ok(())
                    }
                    "cudaMemset" => {
                        out.push(Stmt::new(
                            StmtKind::Expr(Expr::call("memset", args.clone())),
                            stmt.line,
                        ));
                        Ok(())
                    }
                    "cudaFree" => {
                        out.push(Stmt::new(
                            StmtKind::Expr(Expr::call("free", args.clone())),
                            stmt.line,
                        ));
                        Ok(())
                    }
                    _ => {
                        out.push(stmt.clone());
                        Ok(())
                    }
                }
            }
            StmtKind::KernelLaunch(launch) => {
                let pragma = self.launch_to_pragma(launch, stmt.line)?;
                out.push(pragma);
                Ok(())
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                out.push(Stmt::new(
                    StmtKind::If {
                        cond: cond.clone(),
                        then_branch: self.rewrite_host_block(then_branch)?,
                        else_branch: match else_branch {
                            Some(e) => Some(self.rewrite_host_block(e)?),
                            None => None,
                        },
                    },
                    stmt.line,
                ));
                Ok(())
            }
            StmtKind::For(f) => {
                out.push(Stmt::new(
                    StmtKind::For(ForStmt {
                        init: f.init.clone(),
                        cond: f.cond.clone(),
                        step: f.step.clone(),
                        body: self.rewrite_host_block(&f.body)?,
                    }),
                    stmt.line,
                ));
                Ok(())
            }
            StmtKind::While { cond, body } => {
                out.push(Stmt::new(
                    StmtKind::While {
                        cond: cond.clone(),
                        body: self.rewrite_host_block(body)?,
                    },
                    stmt.line,
                ));
                Ok(())
            }
            StmtKind::Block(b) => {
                out.push(Stmt::new(
                    StmtKind::Block(self.rewrite_host_block(b)?),
                    stmt.line,
                ));
                Ok(())
            }
            _ => {
                out.push(stmt.clone());
                Ok(())
            }
        }
    }

    /// Turn `kernel<<<grid, block>>>(args)` into a `target teams distribute
    /// parallel for` loop (or a nested pair with `collapse(2)`).
    fn launch_to_pragma(&self, launch: &KernelLaunch, line: u32) -> Result<Stmt, TranslationError> {
        let kernel = self.program.function(&launch.kernel).ok_or_else(|| {
            TranslationError::Unsupported(format!("launch of unknown kernel '{}'", launch.kernel))
        })?;
        if kernel.params.len() != launch.args.len() {
            return Err(TranslationError::Unsupported(format!(
                "kernel '{}' launch arity mismatch",
                launch.kernel
            )));
        }

        // Substitution: kernel parameter name → actual argument expression.
        let mut subst: HashMap<String, Expr> = HashMap::new();
        for (param, arg) in kernel.params.iter().zip(&launch.args) {
            subst.insert(param.name.clone(), arg.clone());
        }

        // Recognise the canonical kernel shape:
        //   int i = blockIdx.x * blockDim.x + threadIdx.x;
        //   [int j = blockIdx.y * blockDim.y + threadIdx.y;]
        //   if (i < n [&& j < m]) { body }
        let mut index_vars: Vec<(String, char)> = Vec::new();
        let mut rest: Vec<&Stmt> = Vec::new();
        for s in &kernel.body.stmts {
            if let StmtKind::VarDecl(d) = &s.kind {
                if let Some(init) = &d.init {
                    if let Some(dim) = global_index_dimension(init) {
                        index_vars.push((d.name.clone(), dim));
                        continue;
                    }
                }
            }
            rest.push(s);
        }
        if index_vars.is_empty() {
            return Err(TranslationError::Unsupported(format!(
                "kernel '{}' does not compute a global thread index",
                launch.kernel
            )));
        }

        // The guard provides the loop bounds.
        let (bounds, inner_body) = extract_guard(&rest, &index_vars).ok_or_else(|| {
            TranslationError::Unsupported(format!(
                "kernel '{}' does not guard its global index against the problem size",
                launch.kernel
            ))
        })?;

        // Rewrite the loop body: substitute arguments, convert atomics.
        let substituted = subst_block(&inner_body, &subst);
        let body = rewrite_atomics_to_omp(&substituted);

        // Build the loop nest (innermost first).
        let mut loop_stmt: Option<Stmt> = None;
        for (k, (var, _dim)) in index_vars.iter().enumerate().rev() {
            let bound = subst_expr(&bounds[k], &subst);
            let inner_block = match loop_stmt.take() {
                Some(s) => Block::from_stmts(vec![s]),
                None => body.clone(),
            };
            let for_stmt = ForStmt {
                init: Some(Box::new(Stmt::synth(StmtKind::VarDecl(VarDecl::scalar(
                    var.clone(),
                    Type::Int,
                    Some(Expr::int(0)),
                ))))),
                cond: Some(Expr::bin(BinOp::Lt, Expr::ident(var.clone()), bound)),
                step: Some(Box::new(Stmt::synth(StmtKind::Assign {
                    target: Expr::ident(var.clone()),
                    op: AssignOp::AddAssign,
                    value: Expr::int(1),
                }))),
                body: inner_block,
            };
            loop_stmt = Some(Stmt::synth(StmtKind::For(for_stmt)));
        }
        let loop_stmt = loop_stmt.expect("at least one index var");

        // Map clauses from buffer usage.
        let mut written = Vec::new();
        collect_written_pointers(&body, &mut written);
        let mut clauses: Vec<OmpClause> = Vec::new();
        let mut mapped: Vec<String> = Vec::new();
        for (param, arg) in kernel.params.iter().zip(&launch.args) {
            if !matches!(param.ty, Type::Ptr(_)) {
                continue;
            }
            let Expr::Ident(arg_name) = arg else { continue };
            if mapped.contains(arg_name) {
                continue;
            }
            mapped.push(arg_name.clone());
            let elem = param.ty.pointee().cloned().unwrap_or(Type::Double);
            let len = self
                .device_allocs
                .get(arg_name)
                .map(|bytes| element_count_from_bytes(bytes, &elem))
                .unwrap_or_else(|| Expr::int(1));
            let is_written = written.contains(&param.name) || written.contains(arg_name);
            let kind = if is_written {
                MapKind::ToFrom
            } else {
                MapKind::To
            };
            clauses.push(OmpClause::Map {
                kind,
                sections: vec![MapSection {
                    var: arg_name.clone(),
                    lower: Some(Expr::int(0)),
                    len: Some(len),
                }],
            });
        }
        if index_vars.len() > 1 {
            clauses.push(OmpClause::Collapse(index_vars.len() as u32));
        }
        // Preserve the original block size as a thread_limit hint when it is a
        // literal; this is what the original HeCBench OpenMP codes do and it
        // is what the Codestral `bsearch` fault later drops.
        if let Expr::IntLit(threads) = &launch.block {
            clauses.push(OmpClause::ThreadLimit(Expr::int(*threads)));
        }
        clauses.push(OmpClause::Schedule {
            kind: ScheduleKind::Static,
            chunk: None,
        });

        Ok(Stmt::new(
            StmtKind::Pragma(PragmaStmt {
                directive: OmpDirective {
                    kind: OmpDirectiveKind::TargetTeamsDistributeParallelFor,
                    clauses,
                },
                body: Some(Box::new(loop_stmt)),
            }),
            line,
        ))
    }
}

/// Recognise `blockIdx.D * blockDim.D + threadIdx.D` (any operand order) and
/// return the dimension letter.
fn global_index_dimension(e: &Expr) -> Option<char> {
    fn member_dim(e: &Expr, base: &str) -> Option<char> {
        if let Expr::Member { base: b, field } = e {
            if let Expr::Ident(name) = b.as_ref() {
                if name == base {
                    return field.chars().next();
                }
            }
        }
        None
    }
    if let Expr::Binary {
        op: BinOp::Add,
        lhs,
        rhs,
    } = e
    {
        let (mul, tid) = if matches!(lhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }) {
            (lhs.as_ref(), rhs.as_ref())
        } else {
            (rhs.as_ref(), lhs.as_ref())
        };
        let tid_dim = member_dim(tid, "threadIdx")?;
        if let Expr::Binary {
            op: BinOp::Mul,
            lhs: a,
            rhs: b,
        } = mul
        {
            let has_block_idx =
                member_dim(a, "blockIdx").is_some() || member_dim(b, "blockIdx").is_some();
            let has_block_dim =
                member_dim(a, "blockDim").is_some() || member_dim(b, "blockDim").is_some();
            if has_block_idx && has_block_dim {
                return Some(tid_dim);
            }
        }
    }
    None
}

/// Extract guard bounds for the index variables from the remaining kernel
/// statements. Returns (bounds per index var, guarded body).
fn extract_guard(rest: &[&Stmt], index_vars: &[(String, char)]) -> Option<(Vec<Expr>, Block)> {
    // The guard must be the first remaining statement: if (i < n && j < m) { ... }
    let first = rest.first()?;
    let StmtKind::If {
        cond,
        then_branch,
        else_branch,
    } = &first.kind
    else {
        return None;
    };
    if else_branch.is_some() {
        return None;
    }
    let mut bounds: Vec<Option<Expr>> = vec![None; index_vars.len()];
    let mut conjuncts = Vec::new();
    flatten_and(cond, &mut conjuncts);
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Lt,
            lhs,
            rhs,
        } = c
        {
            if let Expr::Ident(name) = lhs.as_ref() {
                if let Some(pos) = index_vars.iter().position(|(v, _)| v == name) {
                    bounds[pos] = Some(rhs.as_ref().clone());
                }
            }
        }
    }
    let bounds: Option<Vec<Expr>> = bounds.into_iter().collect();
    let mut body = then_branch.clone();
    // Any trailing statements after the guard are appended to the body.
    for s in rest.iter().skip(1) {
        body.stmts.push((*s).clone());
    }
    Some((bounds?, body))
}

fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        flatten_and(lhs, out);
        flatten_and(rhs, out);
    } else {
        out.push(e);
    }
}

/// Convert `atomicAdd(p, v)` / `atomicAdd(p + i, v)` calls into
/// `#pragma omp atomic` updates.
fn rewrite_atomics_to_omp(block: &Block) -> Block {
    let stmts = block.stmts.iter().map(rewrite_atomic_stmt).collect();
    Block { stmts }
}

fn rewrite_atomic_stmt(stmt: &Stmt) -> Stmt {
    match &stmt.kind {
        StmtKind::Expr(Expr::Call { callee, args }) if callee == "atomicAdd" && args.len() == 2 => {
            let (base, index) = match &args[0] {
                Expr::Binary {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                } => (lhs.as_ref().clone(), rhs.as_ref().clone()),
                other => (other.clone(), Expr::int(0)),
            };
            let update = Stmt::synth(StmtKind::Assign {
                target: Expr::index(base, index),
                op: AssignOp::AddAssign,
                value: args[1].clone(),
            });
            Stmt::new(
                StmtKind::Pragma(PragmaStmt {
                    directive: OmpDirective::new(OmpDirectiveKind::Atomic),
                    body: Some(Box::new(update)),
                }),
                stmt.line,
            )
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::new(
            StmtKind::If {
                cond: cond.clone(),
                then_branch: rewrite_atomics_to_omp(then_branch),
                else_branch: else_branch.as_ref().map(rewrite_atomics_to_omp),
            },
            stmt.line,
        ),
        StmtKind::For(f) => Stmt::new(
            StmtKind::For(ForStmt {
                init: f.init.clone(),
                cond: f.cond.clone(),
                step: f.step.clone(),
                body: rewrite_atomics_to_omp(&f.body),
            }),
            stmt.line,
        ),
        StmtKind::While { cond, body } => Stmt::new(
            StmtKind::While {
                cond: cond.clone(),
                body: rewrite_atomics_to_omp(body),
            },
            stmt.line,
        ),
        StmtKind::Block(b) => Stmt::new(StmtKind::Block(rewrite_atomics_to_omp(b)), stmt.line),
        _ => stmt.clone(),
    }
}

// ---------------------------------------------------------------------------
// OpenMP → CUDA
// ---------------------------------------------------------------------------

fn omp_to_cuda(program: &Program) -> Result<Program, TranslationError> {
    let main = program
        .main()
        .ok_or_else(|| TranslationError::Unsupported("program has no main function".into()))?;
    let types = scan_types(main);

    let mut kernels: Vec<Function> = Vec::new();
    let mut counter = 0usize;
    let new_main_body =
        rewrite_omp_block(&main.body, &types, &mut kernels, &mut counter, &main.body)?;

    let mut out = Program::new(Dialect::CudaLite);
    for k in kernels {
        out.items.push(Item::Function(k));
    }
    for item in &program.items {
        let f = item.as_function();
        if f.name == "main" {
            let mut new_main = f.clone();
            new_main.body = new_main_body.clone();
            out.items.push(Item::Function(new_main));
        } else {
            out.items.push(Item::Function(f.clone()));
        }
    }
    Ok(out)
}

fn rewrite_omp_block(
    block: &Block,
    types: &HashMap<String, Type>,
    kernels: &mut Vec<Function>,
    counter: &mut usize,
    main_body: &Block,
) -> Result<Block, TranslationError> {
    let mut stmts = Vec::with_capacity(block.stmts.len());
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Pragma(p) => match p.directive.kind {
                OmpDirectiveKind::TargetData => {
                    // Data residency is handled per-kernel in the CUDA version;
                    // simply translate the region body.
                    if let Some(body) = &p.body {
                        let inner = match &body.kind {
                            StmtKind::Block(b) => {
                                rewrite_omp_block(b, types, kernels, counter, main_body)?
                            }
                            _ => rewrite_omp_block(
                                &Block::from_stmts(vec![(**body).clone()]),
                                types,
                                kernels,
                                counter,
                                main_body,
                            )?,
                        };
                        stmts.push(Stmt::new(StmtKind::Block(inner), stmt.line));
                    }
                }
                OmpDirectiveKind::Barrier => {}
                OmpDirectiveKind::Atomic => {
                    // A bare atomic outside a parallel region is just the update.
                    if let Some(body) = &p.body {
                        stmts.push((**body).clone());
                    }
                }
                OmpDirectiveKind::ParallelFor
                | OmpDirectiveKind::TargetTeamsDistributeParallelFor => {
                    outline_loop_to_kernel(
                        p, stmt.line, types, kernels, counter, main_body, &mut stmts,
                    )?;
                }
            },
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                stmts.push(Stmt::new(
                    StmtKind::If {
                        cond: cond.clone(),
                        then_branch: rewrite_omp_block(
                            then_branch,
                            types,
                            kernels,
                            counter,
                            main_body,
                        )?,
                        else_branch: match else_branch {
                            Some(e) => {
                                Some(rewrite_omp_block(e, types, kernels, counter, main_body)?)
                            }
                            None => None,
                        },
                    },
                    stmt.line,
                ));
            }
            StmtKind::For(f) => {
                stmts.push(Stmt::new(
                    StmtKind::For(ForStmt {
                        init: f.init.clone(),
                        cond: f.cond.clone(),
                        step: f.step.clone(),
                        body: rewrite_omp_block(&f.body, types, kernels, counter, main_body)?,
                    }),
                    stmt.line,
                ));
            }
            StmtKind::While { cond, body } => {
                stmts.push(Stmt::new(
                    StmtKind::While {
                        cond: cond.clone(),
                        body: rewrite_omp_block(body, types, kernels, counter, main_body)?,
                    },
                    stmt.line,
                ));
            }
            StmtKind::Block(b) => {
                stmts.push(Stmt::new(
                    StmtKind::Block(rewrite_omp_block(b, types, kernels, counter, main_body)?),
                    stmt.line,
                ));
            }
            _ => stmts.push(stmt.clone()),
        }
    }
    Ok(Block { stmts })
}

#[allow(clippy::too_many_arguments)]
fn outline_loop_to_kernel(
    pragma: &PragmaStmt,
    line: u32,
    types: &HashMap<String, Type>,
    kernels: &mut Vec<Function>,
    counter: &mut usize,
    main_body: &Block,
    out: &mut Vec<Stmt>,
) -> Result<(), TranslationError> {
    let Some(body_stmt) = pragma.body.as_deref() else {
        return Err(TranslationError::Unsupported(
            "work-sharing pragma without a loop".into(),
        ));
    };
    let StmtKind::For(for_stmt) = &body_stmt.kind else {
        return Err(TranslationError::Unsupported(
            "work-sharing pragma not followed by a for loop".into(),
        ));
    };
    let Some((loop_var, lo, hi, step)) = for_stmt.canonical() else {
        return Err(TranslationError::Unsupported(
            "loop is not in canonical form".into(),
        ));
    };
    if lo != Expr::int(0) || step != Expr::int(1) {
        return Err(TranslationError::Unsupported(
            "only loops starting at 0 with unit step are outlined".into(),
        ));
    }

    let kernel_index = *counter;
    *counter += 1;
    let kernel_name = format!("lassi_kernel_{kernel_index}");

    // Free variables of the loop body.
    let mut used = Vec::new();
    collect_block_idents(&for_stmt.body, &mut used);
    hi.collect_idents(&mut used);
    let mut declared = vec![loop_var.clone()];
    collect_declared_names(&for_stmt.body, &mut declared);
    let mut free: Vec<String> = Vec::new();
    for name in used {
        if declared.contains(&name) || free.contains(&name) {
            continue;
        }
        if types.contains_key(&name) {
            free.push(name);
        }
    }

    // Reduction variables.
    let reduction = pragma.directive.reduction();
    let reduction_vars: Vec<String> = reduction.map(|(_, v)| v.clone()).unwrap_or_default();
    if let Some((op, _)) = reduction {
        if op != ReductionOp::Add {
            return Err(TranslationError::Unsupported(format!(
                "reduction operator '{}' is not supported by the CUDA translation",
                op.spelling()
            )));
        }
    }

    // Map-section lengths, used to size the device buffers.
    let mut map_lens: HashMap<String, Expr> = HashMap::new();
    for (_, sections) in pragma.directive.map_clauses() {
        for s in sections {
            if let Some(len) = &s.len {
                map_lens.insert(s.var.clone(), len.clone());
            }
        }
    }

    // Partition the free variables.
    let mut pointer_vars: Vec<(String, Type)> = Vec::new();
    let mut scalar_vars: Vec<(String, Type)> = Vec::new();
    for name in &free {
        let ty = types.get(name).cloned().unwrap_or(Type::Long);
        if reduction_vars.contains(name) {
            continue;
        }
        match ty {
            Type::Ptr(_) => pointer_vars.push((name.clone(), ty)),
            _ => scalar_vars.push((name.clone(), ty)),
        }
    }

    // Which pointers are written (→ copy back after the kernel).
    let mut written = Vec::new();
    collect_written_pointers(&for_stmt.body, &mut written);

    // ---------------------------------------------------------------- kernel
    let mut kernel_params: Vec<Param> = Vec::new();
    let mut launch_args: Vec<Expr> = Vec::new();
    let mut staging: Vec<Stmt> = Vec::new();
    let mut teardown: Vec<Stmt> = Vec::new();

    for (name, ty) in &pointer_vars {
        let elem = ty.pointee().cloned().unwrap_or(Type::Double);
        let dev_name = format!("d{kernel_index}_{name}");
        let count = map_lens
            .get(name)
            .cloned()
            .or_else(|| find_allocation_count(main_body, name, &elem))
            .unwrap_or_else(|| hi.clone());
        let bytes = Expr::bin(BinOp::Mul, count, Expr::Sizeof(elem.clone()));
        staging.push(Stmt::synth(StmtKind::VarDecl(VarDecl::scalar(
            dev_name.clone(),
            ty.clone(),
            None,
        ))));
        staging.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaMalloc",
            vec![
                Expr::Unary {
                    op: lassi_lang::UnOp::AddrOf,
                    operand: Box::new(Expr::ident(dev_name.clone())),
                },
                bytes.clone(),
            ],
        ))));
        staging.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaMemcpy",
            vec![
                Expr::ident(dev_name.clone()),
                Expr::ident(name.clone()),
                bytes.clone(),
                Expr::ident("cudaMemcpyHostToDevice"),
            ],
        ))));
        if written.contains(name) {
            teardown.push(Stmt::synth(StmtKind::Expr(Expr::call(
                "cudaMemcpy",
                vec![
                    Expr::ident(name.clone()),
                    Expr::ident(dev_name.clone()),
                    bytes,
                    Expr::ident("cudaMemcpyDeviceToHost"),
                ],
            ))));
        }
        teardown.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaFree",
            vec![Expr::ident(dev_name.clone())],
        ))));
        kernel_params.push(Param::new(name.clone(), ty.clone()));
        launch_args.push(Expr::ident(dev_name));
    }

    for (name, ty) in &scalar_vars {
        kernel_params.push(Param::new(name.clone(), ty.clone()));
        launch_args.push(Expr::ident(name.clone()));
    }

    // Reduction scalars are staged through a one-element device buffer.
    let mut body_subst: HashMap<String, Expr> = HashMap::new();
    for var in &reduction_vars {
        let ty = types.get(var).cloned().unwrap_or(Type::Double);
        let red_param = format!("{var}_red");
        let host_stage = format!("h{kernel_index}_{var}");
        let dev_stage = format!("d{kernel_index}_{var}");
        let bytes = Expr::Sizeof(ty.clone());
        staging.push(Stmt::synth(StmtKind::VarDecl(VarDecl::scalar(
            host_stage.clone(),
            ty.clone().ptr(),
            Some(Expr::Cast {
                ty: ty.clone().ptr(),
                expr: Box::new(Expr::call("malloc", vec![bytes.clone()])),
            }),
        ))));
        staging.push(Stmt::synth(StmtKind::Assign {
            target: Expr::index(Expr::ident(host_stage.clone()), Expr::int(0)),
            op: AssignOp::Assign,
            value: Expr::ident(var.clone()),
        }));
        staging.push(Stmt::synth(StmtKind::VarDecl(VarDecl::scalar(
            dev_stage.clone(),
            ty.clone().ptr(),
            None,
        ))));
        staging.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaMalloc",
            vec![
                Expr::Unary {
                    op: lassi_lang::UnOp::AddrOf,
                    operand: Box::new(Expr::ident(dev_stage.clone())),
                },
                bytes.clone(),
            ],
        ))));
        staging.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaMemcpy",
            vec![
                Expr::ident(dev_stage.clone()),
                Expr::ident(host_stage.clone()),
                bytes.clone(),
                Expr::ident("cudaMemcpyHostToDevice"),
            ],
        ))));
        teardown.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaMemcpy",
            vec![
                Expr::ident(host_stage.clone()),
                Expr::ident(dev_stage.clone()),
                bytes,
                Expr::ident("cudaMemcpyDeviceToHost"),
            ],
        ))));
        teardown.push(Stmt::synth(StmtKind::Assign {
            target: Expr::ident(var.clone()),
            op: AssignOp::Assign,
            value: Expr::index(Expr::ident(host_stage.clone()), Expr::int(0)),
        }));
        teardown.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "cudaFree",
            vec![Expr::ident(dev_stage.clone())],
        ))));
        teardown.push(Stmt::synth(StmtKind::Expr(Expr::call(
            "free",
            vec![Expr::ident(host_stage.clone())],
        ))));

        kernel_params.push(Param::new(red_param.clone(), ty.clone().ptr()));
        launch_args.push(Expr::ident(dev_stage));
        body_subst.insert(var.clone(), Expr::ident(red_param));
    }

    // Bound parameter: reuse an existing scalar when the bound is already a
    // free scalar variable; otherwise add a dedicated parameter.
    let bound_expr_in_kernel: Expr = match &hi {
        Expr::Ident(name) if scalar_vars.iter().any(|(n, _)| n == name) => {
            Expr::ident(name.clone())
        }
        Expr::IntLit(v) => Expr::int(*v),
        other => {
            kernel_params.push(Param::new("lassi_bound", Type::Int));
            launch_args.push(other.clone());
            Expr::ident("lassi_bound")
        }
    };

    // Kernel body: global index + guard + rewritten loop body.
    let rewritten_body = rewrite_omp_body_for_device(&for_stmt.body, &body_subst, &reduction_vars);
    let index_decl = Stmt::synth(StmtKind::VarDecl(VarDecl::scalar(
        loop_var.clone(),
        Type::Int,
        Some(Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::member(Expr::ident("blockIdx"), "x"),
                Expr::member(Expr::ident("blockDim"), "x"),
            ),
            Expr::member(Expr::ident("threadIdx"), "x"),
        )),
    )));
    let guard = Stmt::synth(StmtKind::If {
        cond: Expr::bin(
            BinOp::Lt,
            Expr::ident(loop_var.clone()),
            bound_expr_in_kernel,
        ),
        then_branch: rewritten_body,
        else_branch: None,
    });
    kernels.push(Function {
        name: kernel_name.clone(),
        qualifier: FnQualifier::Kernel,
        ret: Type::Void,
        params: kernel_params,
        body: Block::from_stmts(vec![index_decl, guard]),
        line: 0,
    });

    // ------------------------------------------------------------ host side
    out.extend(staging);
    let threads = 256i64;
    let grid = Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Add, hi.clone(), Expr::int(threads - 1)),
        Expr::int(threads),
    );
    out.push(Stmt::new(
        StmtKind::KernelLaunch(KernelLaunch {
            kernel: kernel_name,
            grid,
            block: Expr::int(threads),
            args: launch_args,
        }),
        line,
    ));
    out.push(Stmt::synth(StmtKind::Expr(Expr::call(
        "cudaDeviceSynchronize",
        vec![],
    ))));
    out.extend(teardown);
    Ok(())
}

/// Rewrite a work-sharing loop body for execution inside a CUDA kernel:
/// reduction updates become `atomicAdd` on the staged pointer and
/// `#pragma omp atomic` updates become `atomicAdd` on the addressed element.
fn rewrite_omp_body_for_device(
    block: &Block,
    subst: &HashMap<String, Expr>,
    reduction_vars: &[String],
) -> Block {
    let stmts = block
        .stmts
        .iter()
        .map(|s| rewrite_device_stmt(s, subst, reduction_vars))
        .collect();
    Block { stmts }
}

fn rewrite_device_stmt(
    stmt: &Stmt,
    subst: &HashMap<String, Expr>,
    reduction_vars: &[String],
) -> Stmt {
    match &stmt.kind {
        // sum += expr  (sum being a reduction variable)  →  atomicAdd(sum_red, expr)
        StmtKind::Assign {
            target: Expr::Ident(name),
            op,
            value,
        } if reduction_vars.contains(name) => {
            let delta = match op {
                AssignOp::AddAssign => subst_expr(value, subst),
                AssignOp::SubAssign => Expr::Unary {
                    op: lassi_lang::UnOp::Neg,
                    operand: Box::new(subst_expr(value, subst)),
                },
                AssignOp::Assign => {
                    // sum = sum + expr
                    match value {
                        Expr::Binary {
                            op: BinOp::Add,
                            lhs,
                            rhs,
                        } => {
                            if matches!(lhs.as_ref(), Expr::Ident(n) if n == name) {
                                subst_expr(rhs, subst)
                            } else if matches!(rhs.as_ref(), Expr::Ident(n) if n == name) {
                                subst_expr(lhs, subst)
                            } else {
                                subst_expr(value, subst)
                            }
                        }
                        _ => subst_expr(value, subst),
                    }
                }
                _ => subst_expr(value, subst),
            };
            let red_ptr = subst
                .get(name)
                .cloned()
                .unwrap_or_else(|| Expr::ident(format!("{name}_red")));
            Stmt::new(
                StmtKind::Expr(Expr::call("atomicAdd", vec![red_ptr, delta])),
                stmt.line,
            )
        }
        // #pragma omp atomic  x[i] += v   →   atomicAdd(x + i, v)
        StmtKind::Pragma(p) if p.directive.kind == OmpDirectiveKind::Atomic => {
            if let Some(body) = &p.body {
                if let StmtKind::Assign {
                    target: Expr::Index { base, index },
                    op,
                    value,
                } = &body.kind
                {
                    let ptr = match index.as_ref() {
                        Expr::IntLit(0) => subst_expr(base, subst),
                        idx => {
                            Expr::bin(BinOp::Add, subst_expr(base, subst), subst_expr(idx, subst))
                        }
                    };
                    let delta = match op {
                        AssignOp::SubAssign => Expr::Unary {
                            op: lassi_lang::UnOp::Neg,
                            operand: Box::new(subst_expr(value, subst)),
                        },
                        _ => subst_expr(value, subst),
                    };
                    return Stmt::new(
                        StmtKind::Expr(Expr::call("atomicAdd", vec![ptr, delta])),
                        stmt.line,
                    );
                }
            }
            stmt.clone()
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::new(
            StmtKind::If {
                cond: subst_expr(cond, subst),
                then_branch: rewrite_omp_body_for_device(then_branch, subst, reduction_vars),
                else_branch: else_branch
                    .as_ref()
                    .map(|b| rewrite_omp_body_for_device(b, subst, reduction_vars)),
            },
            stmt.line,
        ),
        StmtKind::For(f) => Stmt::new(
            StmtKind::For(ForStmt {
                init: f
                    .init
                    .as_ref()
                    .map(|s| Box::new(rewrite_device_stmt(s, subst, reduction_vars))),
                cond: f.cond.as_ref().map(|e| subst_expr(e, subst)),
                step: f
                    .step
                    .as_ref()
                    .map(|s| Box::new(rewrite_device_stmt(s, subst, reduction_vars))),
                body: rewrite_omp_body_for_device(&f.body, subst, reduction_vars),
            }),
            stmt.line,
        ),
        StmtKind::While { cond, body } => Stmt::new(
            StmtKind::While {
                cond: subst_expr(cond, subst),
                body: rewrite_omp_body_for_device(body, subst, reduction_vars),
            },
            stmt.line,
        ),
        StmtKind::Block(b) => Stmt::new(
            StmtKind::Block(rewrite_omp_body_for_device(b, subst, reduction_vars)),
            stmt.line,
        ),
        _ => subst_stmt(stmt, subst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_lang::{parse, print_program};

    const CUDA_VADD: &str = r#"
    __global__ void vadd(float* out, const float* a, const float* b, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { out[i] = a[i] + b[i]; }
    }
    int main() {
        int n = 128;
        float* h_a = (float*)malloc(n * sizeof(float));
        float* h_b = (float*)malloc(n * sizeof(float));
        float* h_out = (float*)malloc(n * sizeof(float));
        for (int i = 0; i < n; i++) { h_a[i] = i; h_b[i] = 1.0; }
        float* d_a;
        float* d_b;
        float* d_out;
        cudaMalloc(&d_a, n * sizeof(float));
        cudaMalloc(&d_b, n * sizeof(float));
        cudaMalloc(&d_out, n * sizeof(float));
        cudaMemcpy(d_a, h_a, n * sizeof(float), cudaMemcpyHostToDevice);
        cudaMemcpy(d_b, h_b, n * sizeof(float), cudaMemcpyHostToDevice);
        vadd<<<(n + 255) / 256, 256>>>(d_out, d_a, d_b, n);
        cudaDeviceSynchronize();
        cudaMemcpy(h_out, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
        double sum = 0.0;
        for (int i = 0; i < n; i++) { sum += h_out[i]; }
        printf("sum %.1f\n", sum);
        cudaFree(d_a);
        cudaFree(d_b);
        cudaFree(d_out);
        free(h_a);
        free(h_b);
        free(h_out);
        return 0;
    }
    "#;

    const OMP_SUM: &str = r#"
    int main() {
        int n = 256;
        double* a = (double*)malloc(n * sizeof(double));
        for (int i = 0; i < n; i++) { a[i] = i * 0.5; }
        double sum = 0.0;
        #pragma omp target teams distribute parallel for map(to: a[0:n]) map(tofrom: sum) reduction(+:sum) thread_limit(256)
        for (int i = 0; i < n; i++) {
            sum += a[i];
        }
        printf("total %.1f\n", sum);
        free(a);
        return 0;
    }
    "#;

    #[test]
    fn cuda_to_omp_produces_compilable_offload_code() {
        let program = parse(CUDA_VADD, Dialect::CudaLite).unwrap();
        let translated = translate_program(&program, Dialect::OmpLite).unwrap();
        let printed = print_program(&translated);
        assert!(printed.contains("#pragma omp target teams distribute parallel for"));
        assert!(printed.contains("map(to:"));
        assert!(printed.contains("map(tofrom: d_out[0:n])"));
        assert!(printed.contains("thread_limit(256)"));
        assert!(!printed.contains("<<<"));
        assert!(!printed.contains("cudaMemcpy"));
        lassi_sema::compile(&translated).unwrap_or_else(|e| panic!("{e:?}\n{printed}"));
    }

    #[test]
    fn omp_to_cuda_produces_compilable_kernel_code() {
        let program = parse(OMP_SUM, Dialect::OmpLite).unwrap();
        let translated = translate_program(&program, Dialect::CudaLite).unwrap();
        let printed = print_program(&translated);
        assert!(printed.contains("__global__ void lassi_kernel_0"));
        assert!(printed.contains("atomicAdd"));
        assert!(printed.contains("cudaMalloc"));
        assert!(printed.contains("cudaMemcpyDeviceToHost"));
        assert!(printed.contains("<<<"));
        assert!(!printed.contains("#pragma"));
        lassi_sema::compile(&translated).unwrap_or_else(|e| panic!("{e:?}\n{printed}"));
    }

    #[test]
    fn same_dialect_translation_is_identity() {
        let program = parse(CUDA_VADD, Dialect::CudaLite).unwrap();
        let same = translate_program(&program, Dialect::CudaLite).unwrap();
        assert_eq!(program, same);
    }

    #[test]
    fn two_dimensional_kernel_gets_collapse() {
        let src = r#"
        __global__ void rotate(float* out, const float* in, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            int j = blockIdx.y * blockDim.y + threadIdx.y;
            if (i < n && j < n) { out[j * n + (n - 1 - i)] = in[i * n + j]; }
        }
        int main() {
            int n = 32;
            float* h = (float*)malloc(n * n * sizeof(float));
            float* d_in;
            float* d_out;
            cudaMalloc(&d_in, n * n * sizeof(float));
            cudaMalloc(&d_out, n * n * sizeof(float));
            cudaMemcpy(d_in, h, n * n * sizeof(float), cudaMemcpyHostToDevice);
            dim3 block(16, 16);
            dim3 grid(2, 2);
            rotate<<<grid, block>>>(d_out, d_in, n);
            cudaMemcpy(h, d_out, n * n * sizeof(float), cudaMemcpyDeviceToHost);
            printf("%f\n", h[0]);
            free(h);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::CudaLite).unwrap();
        let translated = translate_program(&program, Dialect::OmpLite).unwrap();
        let printed = print_program(&translated);
        assert!(printed.contains("collapse(2)"));
        lassi_sema::compile(&translated).unwrap_or_else(|e| panic!("{e:?}\n{printed}"));
    }

    #[test]
    fn atomic_cuda_kernel_becomes_omp_atomic() {
        let src = r#"
        __global__ void hist(double* bins, const int* data, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { atomicAdd(bins + data[i], 1.0); }
        }
        int main() {
            int n = 64;
            int* h_data = (int*)malloc(n * sizeof(int));
            double* h_bins = (double*)malloc(8 * sizeof(double));
            int* d_data;
            double* d_bins;
            cudaMalloc(&d_data, n * sizeof(int));
            cudaMalloc(&d_bins, 8 * sizeof(double));
            cudaMemcpy(d_data, h_data, n * sizeof(int), cudaMemcpyHostToDevice);
            hist<<<1, 64>>>(d_bins, d_data, n);
            cudaMemcpy(h_bins, d_bins, 8 * sizeof(double), cudaMemcpyDeviceToHost);
            printf("%f\n", h_bins[0]);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::CudaLite).unwrap();
        let translated = translate_program(&program, Dialect::OmpLite).unwrap();
        let printed = print_program(&translated);
        assert!(printed.contains("#pragma omp atomic"));
        lassi_sema::compile(&translated).unwrap_or_else(|e| panic!("{e:?}\n{printed}"));
    }

    #[test]
    fn unsupported_kernel_shape_is_reported() {
        let src = r#"
        __global__ void weird(float* out) {
            out[0] = 1.0;
        }
        int main() {
            float* d;
            cudaMalloc(&d, 4 * sizeof(float));
            weird<<<1, 1>>>(d);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::CudaLite).unwrap();
        let err = translate_program(&program, Dialect::OmpLite).unwrap_err();
        assert!(matches!(err, TranslationError::Unsupported(_)));
    }

    #[test]
    fn host_parallel_for_is_outlined_too() {
        let src = r#"
        int main() {
            int n = 100;
            double* out = (double*)malloc(n * sizeof(double));
            #pragma omp parallel for num_threads(8)
            for (int i = 0; i < n; i++) { out[i] = i * 2.0; }
            printf("%.1f\n", out[99]);
            free(out);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::OmpLite).unwrap();
        let translated = translate_program(&program, Dialect::CudaLite).unwrap();
        let printed = print_program(&translated);
        assert!(printed.contains("__global__"));
        assert!(printed.contains("cudaMemcpy(out, d0_out"));
        lassi_sema::compile(&translated).unwrap_or_else(|e| panic!("{e:?}\n{printed}"));
    }

    #[test]
    fn nested_target_data_region_translates() {
        let src = r#"
        int main() {
            int n = 50;
            double* a = (double*)malloc(n * sizeof(double));
            #pragma omp target data map(tofrom: a[0:n])
            {
                #pragma omp target teams distribute parallel for
                for (int i = 0; i < n; i++) { a[i] = i; }
            }
            printf("%.1f\n", a[49]);
            free(a);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::OmpLite).unwrap();
        let translated = translate_program(&program, Dialect::CudaLite).unwrap();
        let printed = print_program(&translated);
        assert!(printed.contains("lassi_kernel_0"));
        lassi_sema::compile(&translated).unwrap_or_else(|e| panic!("{e:?}\n{printed}"));
    }
}
