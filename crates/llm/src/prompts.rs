//! The LASSI prompt dictionary.
//!
//! Reproduces, verbatim, the prompt text from the paper:
//!
//! * Table I — system prompts (general purpose, CUDA→OpenMP, OpenMP→CUDA),
//! * Table II — target-language-specific translation prompts,
//! * Table III — compilation / execution self-correction prompts,
//!
//! plus condensed stand-ins for the programming-language knowledge the paper
//! injects (Chapter 5 of the CUDA C++ Programming Guide and the OpenMP 4.0
//! reference card), and the "self-prompting" requests used to summarise that
//! knowledge and the source code before translation.

use lassi_lang::Dialect;

/// The general-purpose system prompt (Table I, row 1).
pub const SYSTEM_GENERAL: &str = "You are a professional coding AI assistant that specializes in \
translating parallelized code between coding frameworks.";

/// CUDA → OpenMP system prompt (Table I, row 2).
pub const SYSTEM_CUDA_TO_OPENMP: &str = "You are a professional coding AI assistant that \
specializes in translating parallelized CUDA code to C++ code using OpenMP directives. Always \
provide the complete and fully functional translated code without placeholders, comments, or \
references suggesting that parts of the original code should be included. Ensure every part of \
the translated code is explicitly written out. Surround your new generated code with the three \
characters```.";

/// OpenMP → CUDA system prompt (Table I, row 3).
pub const SYSTEM_OPENMP_TO_CUDA: &str = "You are a professional coding AI assistant that \
specializes in translating parallelized C++ code using OpenMP directives to the CUDA framework. \
Always provide the complete and fully functional translated code without placeholders, comments, \
or references suggesting that parts of the original code should be included. Ensure every part of \
the translated code is explicitly written out. Surround your new generated code with the three \
characters```.";

/// OpenMP → CUDA translation prompt (Table II, row 1).
pub const TRANSLATE_OPENMP_TO_CUDA: &str = "Generate new code to refactor the following \
parallelized C++ program written with OpenMP to instead use the CUDA framework. Provide the \
complete translated CUDA code without any placeholders, comments, or references suggesting that \
parts of the original code should be included. Every part of the translated code should be \
explicitly written out. Avoid explanation of the code.";

/// CUDA → OpenMP translation prompt (Table II, row 2).
pub const TRANSLATE_CUDA_TO_OPENMP: &str = "Generate new code to refactor the following \
parallelized CUDA program to instead use C++ code written with OpenMP directives. To enable GPU \
offloading, use the 'omp pragma' directive 'target teams' for distributing 'for' loop \
computations. Use static scheduling when needed and avoid dynamic scheduling. Provide the \
complete translated C++ code without any placeholders, comments, or references suggesting that \
parts of the original code should be included. Every part of the translated code should be \
explicitly written out. Avoid explanation of the code.";

/// A condensed stand-in for Chapter 5 of the CUDA C++ Programming Guide
/// (the paper injects roughly 4,053 tokens of it as domain knowledge).
pub const CUDA_KNOWLEDGE: &str = "CUDA programming model summary. A kernel is declared with the \
__global__ qualifier and returns void. Kernels are launched with the execution configuration \
syntax kernel<<<gridDim, blockDim>>>(arguments); gridDim and blockDim may be integers or dim3 \
values. Inside a kernel the built-in variables threadIdx, blockIdx, blockDim and gridDim identify \
each thread; a global index is typically computed as blockIdx.x * blockDim.x + threadIdx.x and \
guarded against the problem size. Device memory is managed with cudaMalloc and cudaFree, and data \
moves between host and device with cudaMemcpy using cudaMemcpyHostToDevice or \
cudaMemcpyDeviceToHost. cudaDeviceSynchronize waits for kernels to finish. Shared memory is \
declared with __shared__ and synchronized with __syncthreads. Atomic updates use atomicAdd, \
atomicMin and atomicMax. Blocks are limited to 1024 threads; choose the block size (commonly 256) \
and compute the grid size as (N + blockSize - 1) / blockSize.";

/// A condensed stand-in for the OpenMP 4.0 C/C++ reference card
/// (the paper injects roughly 7,290 tokens of it).
pub const OPENMP_KNOWLEDGE: &str = "OpenMP target offload summary. Work is offloaded to an \
attached device with #pragma omp target; loops are distributed across teams and threads with \
#pragma omp target teams distribute parallel for. Data movement is controlled with map clauses: \
map(to: a[0:n]) copies data to the device, map(from: b[0:n]) copies results back, map(tofrom: ...) \
does both, and #pragma omp target data creates a structured region that keeps data resident \
across multiple target regions. Reductions use reduction(op: var) with +, *, min or max. \
num_teams, thread_limit and num_threads bound the parallelism; schedule(static) divides \
iterations evenly while schedule(dynamic) assigns chunks on demand and adds runtime overhead. \
collapse(n) merges n perfectly nested loops. Atomic updates use #pragma omp atomic. Host-only \
parallelism uses #pragma omp parallel for. omp_get_wtime returns wall-clock time.";

/// The self-prompting request used to summarise the language knowledge.
pub const SELF_PROMPT_KNOWLEDGE_SUMMARY: &str = "Summarize the following programming language \
reference so that you can use it later when translating code. Keep every API name exact.";

/// The self-prompting request used to summarise the source code.
pub const SELF_PROMPT_CODE_DESCRIPTION: &str = "Describe what the following program computes and \
how it is parallelized, in a short paragraph. Keep every identifier exact.";

/// The prompt dictionary: every piece of prompt text used by the pipeline,
/// keyed by translation direction. New target languages are added by
/// extending this dictionary, without touching the pipeline itself.
#[derive(Debug, Clone)]
pub struct PromptDictionary;

impl PromptDictionary {
    /// System prompt for a translation direction (Table I).
    pub fn system_prompt(source: Dialect, target: Dialect) -> &'static str {
        match (source, target) {
            (Dialect::CudaLite, Dialect::OmpLite) => SYSTEM_CUDA_TO_OPENMP,
            (Dialect::OmpLite, Dialect::CudaLite) => SYSTEM_OPENMP_TO_CUDA,
            _ => SYSTEM_GENERAL,
        }
    }

    /// Translation prompt for a direction (Table II).
    pub fn translation_prompt(source: Dialect, target: Dialect) -> &'static str {
        match (source, target) {
            (Dialect::OmpLite, Dialect::CudaLite) => TRANSLATE_OPENMP_TO_CUDA,
            _ => TRANSLATE_CUDA_TO_OPENMP,
        }
    }

    /// Domain-knowledge passage for the *target* language.
    pub fn language_knowledge(target: Dialect) -> &'static str {
        match target {
            Dialect::CudaLite => CUDA_KNOWLEDGE,
            Dialect::OmpLite => OPENMP_KNOWLEDGE,
        }
    }

    /// The full translation prompt (§III-C): knowledge context, the LLM's own
    /// summaries, and the translation request wrapping the source code.
    pub fn build_translation_prompt(
        source: Dialect,
        target: Dialect,
        knowledge_summary: &str,
        code_description: &str,
        source_code: &str,
    ) -> String {
        format!(
            "{knowledge}\n\n{summary}\n\nThink carefully before developing the following code that \
you describe as: {description}. Now, {translate}:\n```\n{code}\n```\n",
            knowledge = Self::language_knowledge(target),
            summary = knowledge_summary,
            description = code_description,
            translate = Self::translation_prompt(source, target),
            code = source_code,
        )
    }

    /// Compile-error self-correction prompt (Table III, row 1).
    pub fn build_compile_correction_prompt(
        generated_code: &str,
        compiler_command: &str,
        error_output: &str,
    ) -> String {
        format!(
            "```\n{generated_code}\n```\n-- The above code was compiled with `{compiler_command}` \
and produced the following compile error: {error_output}. Re-factor the above code with a fix to \
eliminate the stated error."
        )
    }

    /// Execution-error self-correction prompt (Table III, row 2).
    pub fn build_execution_correction_prompt(
        generated_code: &str,
        compiler_command: &str,
        error_output: &str,
    ) -> String {
        format!(
            "```\n{generated_code}\n```\n-- The above code was executed after a successful compile \
with `{compiler_command}` and produced the following execution error: {error_output}. Re-factor \
the above code with a fix to eliminate the stated error."
        )
    }

    /// The self-prompt asking the model to summarise the knowledge passage.
    pub fn build_knowledge_summary_prompt(target: Dialect) -> String {
        format!(
            "{SELF_PROMPT_KNOWLEDGE_SUMMARY}\n\n{}",
            Self::language_knowledge(target)
        )
    }

    /// The self-prompt asking the model to describe the source code.
    pub fn build_code_description_prompt(source_code: &str) -> String {
        format!("{SELF_PROMPT_CODE_DESCRIPTION}\n```\n{source_code}\n```\n")
    }
}

/// Extract the last ``` fenced code block from a chunk of text (prompt or
/// response). Returns `None` when no complete fence pair exists.
pub fn extract_code_block(text: &str) -> Option<String> {
    let mut blocks = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("```") {
        let after = &rest[start + 3..];
        // Skip an optional language tag on the fence line.
        let body_start = after.find('\n').map(|p| p + 1).unwrap_or(0);
        let body = &after[body_start..];
        if let Some(end) = body.find("```") {
            blocks.push(body[..end].trim().to_string());
            rest = &body[end + 3..];
        } else {
            break;
        }
    }
    blocks.into_iter().rfind(|b| !b.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_prompts_match_direction() {
        assert!(
            PromptDictionary::system_prompt(Dialect::CudaLite, Dialect::OmpLite)
                .contains("CUDA code to C++ code using OpenMP")
        );
        assert!(
            PromptDictionary::system_prompt(Dialect::OmpLite, Dialect::CudaLite)
                .contains("OpenMP directives to the CUDA framework")
        );
        assert_eq!(
            PromptDictionary::system_prompt(Dialect::CudaLite, Dialect::CudaLite),
            SYSTEM_GENERAL
        );
    }

    #[test]
    fn translation_prompt_mentions_target_guidance() {
        let p = PromptDictionary::translation_prompt(Dialect::CudaLite, Dialect::OmpLite);
        assert!(p.contains("target teams"));
        assert!(p.contains("static scheduling"));
        let q = PromptDictionary::translation_prompt(Dialect::OmpLite, Dialect::CudaLite);
        assert!(q.contains("CUDA framework"));
    }

    #[test]
    fn full_prompt_contains_all_four_parts() {
        let prompt = PromptDictionary::build_translation_prompt(
            Dialect::OmpLite,
            Dialect::CudaLite,
            "SUMMARY-MARKER",
            "DESCRIPTION-MARKER",
            "int main() { return 0; }",
        );
        assert!(prompt.contains("CUDA programming model summary"));
        assert!(prompt.contains("SUMMARY-MARKER"));
        assert!(prompt.contains("DESCRIPTION-MARKER"));
        assert!(prompt.contains("int main() { return 0; }"));
        assert!(prompt.contains("Think carefully"));
    }

    #[test]
    fn correction_prompts_embed_error_text() {
        let c = PromptDictionary::build_compile_correction_prompt("CODE", "nvcc -O3", "error: x");
        assert!(c.contains("compile error: error: x"));
        assert!(c.contains("Re-factor"));
        let e = PromptDictionary::build_execution_correction_prompt("CODE", "nvcc -O3", "boom");
        assert!(e.contains("execution error: boom"));
    }

    #[test]
    fn repair_prompt_renders_structured_diagnostics_byte_stably() {
        // Golden test: the repair prompt built from structured diagnostics
        // (code + span + notes) is pinned byte for byte. The scenario cache
        // key is versioned on these bytes (v4) — if this golden changes, the
        // key in `lassi-harness::cache` must be bumped with it.
        use lassi_lang::diag::{render_structured, Diagnostic};
        let diags = vec![
            Diagnostic::warning(
                3,
                "'omp_get_wtime' requires linking against the OpenMP runtime",
            )
            .with_code("sema/omp-runtime-in-cuda"),
            Diagnostic::error(14, "use of undeclared identifier 'd_out'")
                .with_code("sema/undeclared-ident")
                .with_note(7, "'d_out' was freed here"),
        ];
        let build = || {
            PromptDictionary::build_compile_correction_prompt(
                "int main() { return 0; }",
                "nvcc -O3",
                &render_structured(&diags),
            )
        };
        let golden = "```\nint main() { return 0; }\n```\n-- The above code was compiled with \
`nvcc -O3` and produced the following compile error: \
error[sema/undeclared-ident]: line 14: use of undeclared identifier 'd_out'\n\
\x20 note: line 7: 'd_out' was freed here\n\
warning[sema/omp-runtime-in-cuda]: line 3: 'omp_get_wtime' requires linking against the OpenMP \
runtime. Re-factor the above code with a fix to eliminate the stated error.";
        assert_eq!(build(), golden);
        // Deterministic: identical input renders to identical bytes.
        assert_eq!(build(), build());
    }

    #[test]
    fn extract_code_block_finds_last_block() {
        let text = "intro\n```\nfirst block\n```\nmiddle\n```cpp\nsecond block\n```\ntail";
        assert_eq!(extract_code_block(text).unwrap(), "second block");
        assert_eq!(extract_code_block("no fences here"), None);
    }

    #[test]
    fn knowledge_token_budget_is_modest() {
        // The stand-in passages must fit comfortably inside even the smallest
        // context window used in the paper (16,384 tokens for Wizard Coder).
        let cuda = crate::tokenizer::count_tokens(CUDA_KNOWLEDGE);
        let omp = crate::tokenizer::count_tokens(OPENMP_KNOWLEDGE);
        assert!(cuda > 50 && cuda < 4_053);
        assert!(omp > 50 && omp < 7_290);
    }
}
