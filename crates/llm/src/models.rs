//! The four LLM configurations evaluated in the paper (Table V), each paired
//! with a *capability profile* that drives the simulated model's behaviour.

/// How capable a simulated model is, expressed as probabilities per
//  translation attempt. All probabilities are independent per fault class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapabilityProfile {
    /// Probability that the first translation attempt carries a *compile*
    /// fault (syntax slip, wrong API name, missing declaration).
    pub p_compile_fault: f64,
    /// Probability that a translation carries a *runtime* fault
    /// (out-of-bounds indexing, missing data transfer).
    pub p_runtime_fault: f64,
    /// Probability of an unrecoverable *semantic* fault: the program runs but
    /// produces different output (reported as N/A in the paper's tables).
    pub p_semantic_fault: f64,
    /// Probability of a performance regression (e.g. serializing the parallel
    /// region, dropping the thread configuration).
    pub p_perf_regression: f64,
    /// Probability of a performance improvement (restructured parallelism,
    /// fewer atomics) — the DeepSeek `atomicCost` 66× case.
    pub p_perf_improvement: f64,
    /// Probability that one self-correction round actually removes the fault
    /// it was asked to fix.
    pub p_repair_success: f64,
    /// Probability that a failed repair introduces a *new* compile fault
    /// (this is how the pathological 34-iteration Codestral case arises).
    pub p_repair_regression: f64,
}

/// One of the LLMs from Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name as printed in the paper.
    pub name: &'static str,
    /// Parameter count description (Table V "Parameters").
    pub parameters: &'static str,
    /// On-disk size in GB (Table V "Size"); `None` for API-only models.
    pub size_gb: Option<f64>,
    /// Quantization description.
    pub quantization: &'static str,
    /// Context window in tokens.
    pub context_tokens: usize,
    /// Behaviour profile of the simulated stand-in.
    pub profile: CapabilityProfile,
}

impl ModelSpec {
    /// Stable identity string covering everything that influences the
    /// simulated model's behaviour: the Table V metadata *and* the capability
    /// profile (float fields rendered as IEEE-754 bit patterns so the string
    /// is exact). Used by the harness scenario cache to content-address
    /// results — two specs with equal fingerprints produce identical records
    /// for the same (application, direction, seed, config).
    pub fn fingerprint(&self) -> String {
        let p = &self.profile;
        format!(
            "{}|{}|{}|{}|{}|{:016x}:{:016x}:{:016x}:{:016x}:{:016x}:{:016x}:{:016x}",
            self.name,
            self.parameters,
            match self.size_gb {
                Some(gb) => format!("{:016x}", gb.to_bits()),
                None => "api".to_string(),
            },
            self.quantization,
            self.context_tokens,
            p.p_compile_fault.to_bits(),
            p.p_runtime_fault.to_bits(),
            p.p_semantic_fault.to_bits(),
            p.p_perf_regression.to_bits(),
            p.p_perf_improvement.to_bits(),
            p.p_repair_success.to_bits(),
            p.p_repair_regression.to_bits(),
        )
    }

    /// Short identifier usable in file names and seeds.
    pub fn slug(&self) -> String {
        self.name
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-")
    }
}

/// GPT-4 (API, 1.76 T parameters, 32,768-token context).
pub fn gpt4() -> ModelSpec {
    ModelSpec {
        name: "GPT-4",
        parameters: "1.76 T",
        size_gb: None,
        quantization: "N/A",
        context_tokens: 32_768,
        profile: CapabilityProfile {
            p_compile_fault: 0.28,
            p_runtime_fault: 0.10,
            p_semantic_fault: 0.16,
            p_perf_regression: 0.12,
            p_perf_improvement: 0.10,
            p_repair_success: 0.88,
            p_repair_regression: 0.04,
        },
    }
}

/// Codestral 22B (8-bit, 32,768-token context).
pub fn codestral() -> ModelSpec {
    ModelSpec {
        name: "Codestral",
        parameters: "22B",
        size_gb: Some(24.0),
        quantization: "8-bit",
        context_tokens: 32_768,
        profile: CapabilityProfile {
            p_compile_fault: 0.38,
            p_runtime_fault: 0.14,
            p_semantic_fault: 0.10,
            p_perf_regression: 0.22,
            p_perf_improvement: 0.14,
            p_repair_success: 0.72,
            p_repair_regression: 0.12,
        },
    }
}

/// Wizard Coder 33B (8-bit, 16,384-token context).
pub fn wizard_coder() -> ModelSpec {
    ModelSpec {
        name: "Wizard Coder",
        parameters: "33B",
        size_gb: Some(35.0),
        quantization: "8-bit",
        context_tokens: 16_384,
        profile: CapabilityProfile {
            p_compile_fault: 0.34,
            p_runtime_fault: 0.12,
            p_semantic_fault: 0.07,
            p_perf_regression: 0.18,
            p_perf_improvement: 0.12,
            p_repair_success: 0.80,
            p_repair_regression: 0.07,
        },
    }
}

/// DeepSeek Coder v2 16B (F16, 163,840-token context).
pub fn deepseek_coder() -> ModelSpec {
    ModelSpec {
        name: "DeepSeek Coder v2",
        parameters: "16B",
        size_gb: Some(31.0),
        quantization: "F16",
        context_tokens: 163_840,
        profile: CapabilityProfile {
            p_compile_fault: 0.34,
            p_runtime_fault: 0.14,
            p_semantic_fault: 0.19,
            p_perf_regression: 0.16,
            p_perf_improvement: 0.18,
            p_repair_success: 0.76,
            p_repair_regression: 0.08,
        },
    }
}

/// All four models in the order the paper's tables use.
pub fn all_models() -> Vec<ModelSpec> {
    vec![gpt4(), codestral(), wizard_coder(), deepseek_coder()]
}

/// Look a model up by (case-insensitive) name or slug.
pub fn model_by_name(name: &str) -> Option<ModelSpec> {
    let needle = name.to_lowercase();
    all_models().into_iter().find(|m| {
        m.name.to_lowercase() == needle
            || m.slug() == needle
            || m.slug().replace('-', "") == needle.replace([' ', '-'], "")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_models_match_table_v() {
        let models = all_models();
        assert_eq!(models.len(), 4);
        assert_eq!(models[0].name, "GPT-4");
        assert_eq!(models[0].context_tokens, 32_768);
        assert_eq!(models[1].name, "Codestral");
        assert_eq!(models[1].size_gb, Some(24.0));
        assert_eq!(models[2].name, "Wizard Coder");
        assert_eq!(models[2].context_tokens, 16_384);
        assert_eq!(models[3].name, "DeepSeek Coder v2");
        assert_eq!(models[3].quantization, "F16");
        assert_eq!(models[3].context_tokens, 163_840);
    }

    #[test]
    fn lookup_by_name_and_slug() {
        assert_eq!(model_by_name("gpt-4").unwrap().name, "GPT-4");
        assert_eq!(model_by_name("Wizard Coder").unwrap().parameters, "33B");
        assert_eq!(
            model_by_name("deepseek coder v2").unwrap().parameters,
            "16B"
        );
        assert!(model_by_name("llama").is_none());
    }

    #[test]
    fn slugs_are_filename_safe() {
        for m in all_models() {
            let slug = m.slug();
            assert!(
                slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{slug}"
            );
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_profiles() {
        assert_eq!(gpt4().fingerprint(), gpt4().fingerprint());
        let mut tweaked = gpt4();
        tweaked.profile.p_compile_fault += 0.01;
        assert_ne!(gpt4().fingerprint(), tweaked.fingerprint());
        // Distinct models never collide.
        let fps: Vec<String> = all_models().iter().map(ModelSpec::fingerprint).collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn probabilities_are_valid() {
        for m in all_models() {
            let p = m.profile;
            for v in [
                p.p_compile_fault,
                p.p_runtime_fault,
                p.p_semantic_fault,
                p.p_perf_regression,
                p.p_perf_improvement,
                p.p_repair_success,
                p.p_repair_regression,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
            // Every model must be able to make progress in the correction loop.
            assert!(p.p_repair_success > 0.5);
        }
    }

    #[test]
    fn gpt4_is_most_reliable_at_repair() {
        let models = all_models();
        let gpt = &models[0];
        for other in &models[1..] {
            assert!(gpt.profile.p_repair_success >= other.profile.p_repair_success);
        }
    }
}
