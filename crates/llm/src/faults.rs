//! Fault classes the simulated LLM can introduce into an otherwise correct
//! translation, and the text transformations that realise them.
//!
//! Each fault is recorded with enough information to be applied
//! deterministically to the clean translated source, so the simulated model
//! can *repair* a translation during the self-correction loop by dropping
//! faults from its list and re-rendering — exactly the observable behaviour
//! (error → re-prompt → new code) the LASSI pipeline is built around.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// What a fault does to the generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCategory {
    /// The program no longer compiles.
    Compile,
    /// The program compiles but fails at runtime.
    Runtime,
    /// The program runs but produces different output (N/A in the tables).
    Semantic,
    /// The program is correct but slower.
    Performance,
}

/// Concrete fault kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Remove the trailing `;` from a statement line.
    DropSemicolon {
        /// Index of the affected line in the clean source.
        line: usize,
    },
    /// Misspell one occurrence of an identifier.
    MisspellIdentifier {
        /// Original identifier.
        from: String,
        /// Misspelled replacement.
        to: String,
    },
    /// Use a wrong API name (e.g. `cudaMemCopy`).
    WrongApiName {
        /// Correct name appearing in the clean source.
        from: String,
        /// The wrong name the model writes.
        to: String,
    },
    /// Delete a variable declaration line entirely.
    RemoveDeclaration {
        /// Index of the declaration line.
        line: usize,
    },
    /// Replace a `i < bound` guard with `i <= bound` (off-by-one overrun).
    LoosenBoundsCheck {
        /// Index of the line containing the guard.
        line: usize,
    },
    /// Drop a `map(...)` clause from an offload pragma.
    DropMapClause {
        /// Index of the pragma line.
        line: usize,
    },
    /// Drop the copy-back `cudaMemcpy(..., cudaMemcpyDeviceToHost)` call.
    DropCopyBack {
        /// Index of the memcpy line.
        line: usize,
    },
    /// Serialize the parallel work (thread_limit/num_threads/block size → 1).
    SerializeParallelism,
    /// Perturb a numeric constant so the output changes.
    PerturbConstant {
        /// The literal text being replaced.
        from: String,
        /// Its replacement.
        to: String,
    },
}

/// A fault instance: kind plus its category.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// What the fault is.
    pub kind: FaultKind,
    /// How it manifests.
    pub category: FaultCategory,
}

impl Fault {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self.kind {
            FaultKind::DropSemicolon { .. } => "drop_semicolon",
            FaultKind::MisspellIdentifier { .. } => "misspell_identifier",
            FaultKind::WrongApiName { .. } => "wrong_api_name",
            FaultKind::RemoveDeclaration { .. } => "remove_declaration",
            FaultKind::LoosenBoundsCheck { .. } => "loosen_bounds_check",
            FaultKind::DropMapClause { .. } => "drop_map_clause",
            FaultKind::DropCopyBack { .. } => "drop_copy_back",
            FaultKind::SerializeParallelism => "serialize_parallelism",
            FaultKind::PerturbConstant { .. } => "perturb_constant",
        }
    }

    /// Apply this fault to source text.
    pub fn apply(&self, source: &str) -> String {
        let mut lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
        match &self.kind {
            FaultKind::DropSemicolon { line } => {
                if let Some(l) = lines.get_mut(*line) {
                    if let Some(pos) = l.rfind(';') {
                        l.remove(pos);
                    }
                }
            }
            FaultKind::MisspellIdentifier { from, to } | FaultKind::WrongApiName { from, to } => {
                // Replace the *last* whole-word occurrence so declarations
                // stay intact and the use site becomes undefined.
                for l in lines.iter_mut().rev() {
                    if let Some(new) = replace_last_word(l, from, to) {
                        *l = new;
                        break;
                    }
                }
            }
            FaultKind::RemoveDeclaration { line } | FaultKind::DropCopyBack { line } => {
                if *line < lines.len() {
                    lines.remove(*line);
                }
            }
            FaultKind::LoosenBoundsCheck { line } => {
                if let Some(l) = lines.get_mut(*line) {
                    if let Some(pos) = l.find(" < ") {
                        l.replace_range(pos..pos + 3, " <= ");
                    }
                }
            }
            FaultKind::DropMapClause { line } => {
                if let Some(l) = lines.get_mut(*line) {
                    if let Some(start) = l.find(" map(") {
                        if let Some(rel_end) = l[start + 1..].find(')') {
                            l.replace_range(start..start + 1 + rel_end + 1, "");
                        }
                    }
                }
            }
            FaultKind::SerializeParallelism => {
                for l in lines.iter_mut() {
                    if l.contains("#pragma omp") {
                        *l = l
                            .replace("thread_limit(256)", "thread_limit(1)")
                            .replace("thread_limit(128)", "thread_limit(1)")
                            .replace("thread_limit(512)", "thread_limit(1)")
                            .replace("num_threads(256)", "num_threads(1)")
                            .replace("num_threads(128)", "num_threads(1)");
                        if !l.contains("thread_limit(") && !l.contains("num_threads(") {
                            l.push_str(" num_teams(1) thread_limit(1)");
                        }
                    }
                    if l.contains("<<<") {
                        // kernel<<<grid, block>>>  →  kernel<<<grid, 1>>>
                        if let (Some(comma), Some(end)) = (l.find(", "), l.find(">>>")) {
                            if comma < end {
                                l.replace_range(comma..end, ", 1");
                            }
                        }
                    }
                }
            }
            FaultKind::PerturbConstant { from, to } => {
                for l in lines.iter_mut().rev() {
                    if let Some(pos) = l.find(from.as_str()) {
                        l.replace_range(pos..pos + from.len(), to);
                        break;
                    }
                }
            }
        }
        lines.join("\n") + "\n"
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn replace_last_word(line: &str, from: &str, to: &str) -> Option<String> {
    let mut result = None;
    let mut search_start = 0usize;
    while let Some(rel) = line[search_start..].find(from) {
        let start = search_start + rel;
        let end = start + from.len();
        let before_ok = start == 0 || !is_word_char(line[..start].chars().next_back().unwrap());
        let after_ok = end >= line.len() || !is_word_char(line[end..].chars().next().unwrap());
        if before_ok && after_ok {
            result = Some(start);
        }
        search_start = end;
    }
    result.map(|start| {
        let mut s = line.to_string();
        s.replace_range(start..start + from.len(), to);
        s
    })
}

/// Pick a fault of the requested category that is applicable to `source`.
/// Returns `None` when no site for that category exists in the code.
pub fn sample_fault(source: &str, category: FaultCategory, rng: &mut StdRng) -> Option<Fault> {
    let lines: Vec<&str> = source.lines().collect();
    match category {
        FaultCategory::Compile => {
            let mut candidates: Vec<Fault> = Vec::new();
            // Statement lines whose semicolon can be dropped.
            let stmt_lines: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.trim_end().ends_with(';') && !l.contains("for ("))
                .map(|(i, _)| i)
                .collect();
            if let Some(&line) = stmt_lines.choose(rng) {
                candidates.push(Fault {
                    kind: FaultKind::DropSemicolon { line },
                    category,
                });
            }
            // Misspell a declared pointer or scalar.
            for ident in collect_declared_identifiers(&lines) {
                candidates.push(Fault {
                    kind: FaultKind::MisspellIdentifier {
                        to: format!("{ident}_tmp"),
                        from: ident,
                    },
                    category,
                });
            }
            for (api, wrong) in [
                ("cudaMemcpy", "cudaMemCopy"),
                ("cudaMalloc", "cudaMallocManagedX"),
                ("__syncthreads", "__synchthreads"),
                ("atomicAdd", "atomicAddFloat"),
                (
                    "omp target teams distribute parallel for",
                    "omp target team distribute parallel for",
                ),
            ] {
                if source.contains(api) {
                    candidates.push(Fault {
                        kind: FaultKind::WrongApiName {
                            from: api.to_string(),
                            to: wrong.to_string(),
                        },
                        category,
                    });
                }
            }
            let decl_lines: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| {
                    let t = l.trim_start();
                    (t.starts_with("int ") || t.starts_with("float* ") || t.starts_with("double* "))
                        && t.ends_with(';')
                        && !t.contains("for ")
                })
                .map(|(i, _)| i)
                .collect();
            if let Some(&line) = decl_lines.choose(rng) {
                candidates.push(Fault {
                    kind: FaultKind::RemoveDeclaration { line },
                    category,
                });
            }
            candidates.choose(rng).cloned()
        }
        FaultCategory::Runtime => {
            let mut candidates: Vec<Fault> = Vec::new();
            let guard_lines: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.contains("if (") && l.contains(" < "))
                .map(|(i, _)| i)
                .collect();
            if let Some(&line) = guard_lines.choose(rng) {
                candidates.push(Fault {
                    kind: FaultKind::LoosenBoundsCheck { line },
                    category,
                });
            }
            let map_lines: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.contains("#pragma omp target") && l.contains("map("))
                .map(|(i, _)| i)
                .collect();
            if let Some(&line) = map_lines.choose(rng) {
                candidates.push(Fault {
                    kind: FaultKind::DropMapClause { line },
                    category,
                });
            }
            candidates.choose(rng).cloned()
        }
        FaultCategory::Semantic => {
            let mut candidates: Vec<Fault> = Vec::new();
            let copy_back: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.contains("cudaMemcpyDeviceToHost"))
                .map(|(i, _)| i)
                .collect();
            if let Some(&line) = copy_back.choose(rng) {
                candidates.push(Fault {
                    kind: FaultKind::DropCopyBack { line },
                    category,
                });
            }
            for constant in ["2.0", "1.0", "0.5", "3.0", "100"] {
                if source.contains(constant) {
                    candidates.push(Fault {
                        kind: FaultKind::PerturbConstant {
                            from: constant.to_string(),
                            to: perturb(constant),
                        },
                        category,
                    });
                }
            }
            candidates.choose(rng).cloned()
        }
        FaultCategory::Performance => {
            if source.contains("#pragma omp") || source.contains("<<<") {
                Some(Fault {
                    kind: FaultKind::SerializeParallelism,
                    category,
                })
            } else {
                None
            }
        }
    }
}

fn perturb(constant: &str) -> String {
    format!("{constant}7")
}

fn collect_declared_identifiers(lines: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for l in lines {
        let t = l.trim_start();
        for prefix in ["float* ", "double* ", "int* ", "long* "] {
            if let Some(rest) = t.strip_prefix(prefix) {
                let name: String = rest.chars().take_while(|c| is_word_char(*c)).collect();
                if name.len() > 2 && !out.contains(&name) {
                    out.push(name);
                }
            }
        }
    }
    out
}

/// Draw a fault of category `category` with probability `p`; used by the
/// session when composing a translation response.
pub fn maybe_fault(
    source: &str,
    category: FaultCategory,
    p: f64,
    rng: &mut StdRng,
) -> Option<Fault> {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        sample_fault(source, category, rng)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const SAMPLE: &str = "int main() {\n    int n = 128;\n    float* d_out;\n    double sum = 2.0;\n    cudaMemcpy(h, d_out, n, cudaMemcpyDeviceToHost);\n    if (i < n) {\n    }\n    #pragma omp target teams distribute parallel for map(to: a[0:n]) thread_limit(256)\n    printf(\"%f\\n\", sum);\n    return 0;\n}\n";

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn drop_semicolon_removes_one() {
        let f = Fault {
            kind: FaultKind::DropSemicolon { line: 1 },
            category: FaultCategory::Compile,
        };
        let out = f.apply(SAMPLE);
        assert!(out.contains("int n = 128\n"));
    }

    #[test]
    fn misspell_changes_use_site_only() {
        let f = Fault {
            kind: FaultKind::MisspellIdentifier {
                from: "d_out".into(),
                to: "d_out_tmp".into(),
            },
            category: FaultCategory::Compile,
        };
        let out = f.apply(SAMPLE);
        // Declaration (first occurrence) intact, last use misspelled.
        assert!(out.contains("float* d_out;"));
        assert!(out.contains("d_out_tmp"));
    }

    #[test]
    fn loosen_bounds_check() {
        let f = Fault {
            kind: FaultKind::LoosenBoundsCheck { line: 5 },
            category: FaultCategory::Runtime,
        };
        let out = f.apply(SAMPLE);
        assert!(out.contains("if (i <= n)"));
    }

    #[test]
    fn drop_map_clause() {
        let f = Fault {
            kind: FaultKind::DropMapClause { line: 7 },
            category: FaultCategory::Runtime,
        };
        let out = f.apply(SAMPLE);
        assert!(!out.contains("map(to: a[0:n])"));
        assert!(out.contains("#pragma omp target teams distribute parallel for"));
    }

    #[test]
    fn serialize_parallelism_drops_thread_budget() {
        let f = Fault {
            kind: FaultKind::SerializeParallelism,
            category: FaultCategory::Performance,
        };
        let out = f.apply(SAMPLE);
        assert!(out.contains("thread_limit(1)"));
    }

    #[test]
    fn drop_copy_back_removes_line() {
        let f = Fault {
            kind: FaultKind::DropCopyBack { line: 4 },
            category: FaultCategory::Semantic,
        };
        let out = f.apply(SAMPLE);
        assert!(!out.contains("cudaMemcpyDeviceToHost"));
    }

    #[test]
    fn perturb_constant_changes_output_value() {
        let f = Fault {
            kind: FaultKind::PerturbConstant {
                from: "2.0".into(),
                to: "2.07".into(),
            },
            category: FaultCategory::Semantic,
        };
        let out = f.apply(SAMPLE);
        assert!(out.contains("sum = 2.07;"));
    }

    #[test]
    fn sampling_finds_applicable_sites() {
        let mut r = rng();
        for category in [
            FaultCategory::Compile,
            FaultCategory::Runtime,
            FaultCategory::Semantic,
            FaultCategory::Performance,
        ] {
            let fault = sample_fault(SAMPLE, category, &mut r);
            assert!(fault.is_some(), "no fault found for {category:?}");
            assert_eq!(fault.unwrap().category, category);
        }
    }

    #[test]
    fn sampling_handles_code_without_sites() {
        let mut r = rng();
        let plain = "int main() {\n    return 0;\n}\n";
        assert!(sample_fault(plain, FaultCategory::Performance, &mut r).is_none());
        assert!(sample_fault(plain, FaultCategory::Runtime, &mut r).is_none());
    }

    #[test]
    fn maybe_fault_respects_probability() {
        let mut r = rng();
        assert!(maybe_fault(SAMPLE, FaultCategory::Compile, 0.0, &mut r).is_none());
        assert!(maybe_fault(SAMPLE, FaultCategory::Compile, 1.0, &mut r).is_some());
    }

    #[test]
    fn labels_are_stable() {
        let f = Fault {
            kind: FaultKind::SerializeParallelism,
            category: FaultCategory::Performance,
        };
        assert_eq!(f.label(), "serialize_parallelism");
    }
}
