//! Vendored stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset of proptest its property tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer and
//!   float ranges, strategy tuples, [`Just`] and simple character-class
//!   string patterns (`"[a-z0-9 ]{0,200}"`),
//! * [`prop_oneof!`], [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//! * `prop::collection::vec`.
//!
//! Differences from the real crate, on purpose: generation is seeded and
//! deterministic (same values every run, good for CI), there is **no
//! shrinking** (a failing case prints its inputs via the panic message
//! instead of minimising them), and `prop_assert*` panics instead of
//! returning `Err`. Swap the real proptest back in for exploratory testing;
//! call sites need no changes.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator used by the [`proptest!`] runner (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator so CI failures reproduce locally.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5EED_CAFE_F00D_0001,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % span;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased, cloneable strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies; what [`prop_oneof!`] builds.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given (type-erased) alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        assert!(self.start < self.end, "empty u32 range strategy");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String-pattern strategies. Only `[character class]{lo,hi}` patterns are
/// supported — exactly what the repository's property tests use. Anything
/// else panics loudly rather than silently generating the wrong language.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    macro_rules! unsupported {
        () => {
            panic!(
                "proptest shim only supports `[class]{{lo,hi}}` string patterns, got {pattern:?}; \
                 vendor more of the real proptest if you need richer patterns"
            )
        };
    }
    let Some(rest) = pattern.strip_prefix('[') else {
        unsupported!()
    };
    let Some((class, rest)) = rest.split_once(']') else {
        unsupported!()
    };
    let Some(bounds) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported!()
    };
    let Some((lo, hi)) = bounds.split_once(',') else {
        unsupported!()
    };
    let (lo, hi): (usize, usize) = match (lo.trim().parse(), hi.trim().parse()) {
        (Ok(lo), Ok(hi)) if lo <= hi => (lo, hi),
        _ => unsupported!(),
    };

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "descending range {a}-{b} in pattern {pattern:?}");
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            alphabet.push(match chars[i + 1] {
                'n' => '\n',
                't' => '\t',
                c => c,
            });
            i += 2;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(
        !alphabet.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    (alphabet, lo, hi)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors the `prop` module path used as `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alternative)),+])
    };
}

/// Assert inside a property, mirroring `proptest::prop_assert!` (panics
/// instead of returning `Err` — see the crate docs).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests, mirroring `proptest::proptest!`. Supports the
/// `#![proptest_config(...)]` header and any number of `fn name(pat in
/// strategy, ...) { body }` items with outer attributes (doc comments,
/// `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($config); $($rest)*);
    };
    (@items ($config:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            // Build the strategy tree once per test, not once per case
            // (matches real proptest, and matters for recursive strategies).
            let strategies = ($($strategy,)+);
            for _case in 0..config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::proptest!(@items ($config); $($rest)*);
    };
    (@items ($config:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(u, 3);
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn char_class_patterns_generate_only_class_members() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c0-1 \\n]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(
                s.chars()
                    .all(|c| matches!(c, 'a'..='c' | '0' | '1' | ' ' | '\n')),
                "{s:?}"
            );
        }
    }

    #[test]
    fn oneof_union_and_map_compose() {
        let mut rng = crate::TestRng::deterministic();
        let strat = prop_oneof![
            (0i64..10).prop_map(|v| v.to_string()),
            prop_oneof![Just("x".to_string()), Just("y".to_string())],
        ];
        let mut saw_digit = false;
        let mut saw_letter = false;
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            match s.as_str() {
                "x" | "y" => saw_letter = true,
                other => {
                    assert!(other.parse::<i64>().is_ok());
                    saw_digit = true;
                }
            }
        }
        assert!(saw_digit && saw_letter);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end-to-end, including tuple patterns and
        /// collection strategies.
        #[test]
        fn macro_generates_cases(x in 0i64..100, pairs in collection::vec((0i64..3, 0.0f64..1.0), 0..5)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(pairs.len() < 5);
            for (a, b) in pairs {
                prop_assert!((0..3).contains(&a));
                prop_assert!((0.0..1.0).contains(&b));
            }
        }
    }
}
