//! Vendored stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the *subset* of the criterion API its benches use: [`Criterion`]
//! with `sample_size` and `bench_function`, a [`Bencher`] with `iter`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros (struct form with
//! `name`/`config`/`targets` and plain list form).
//!
//! Measurement is intentionally simple — median of `sample_size` timed
//! samples after one warm-up, printed in a criterion-like one-line format.
//! It exists so `cargo bench` gives usable relative numbers offline; swap the
//! real criterion back in for publication-grade statistics. Bench binaries
//! accept and ignore the arguments cargo passes (`--bench`, test filters),
//! and run a single fast iteration per benchmark when invoked with `--test`
//! (what `cargo test --benches` does).

use std::time::{Duration, Instant};

/// Shim of `criterion::Criterion`, the benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark. The closure receives a [`Bencher`] and is
    /// expected to call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            timings: Vec::new(),
        };
        f(&mut bencher);
        let mut timings = bencher.timings;
        timings.sort();
        let median = timings.get(timings.len() / 2).copied().unwrap_or_default();
        let lo = timings.first().copied().unwrap_or_default();
        let hi = timings.last().copied().unwrap_or_default();
        println!(
            "{:<44} time: [{} {} {}]",
            id.as_ref(),
            format_duration(lo),
            format_duration(median),
            format_duration(hi)
        );
        self
    }
}

/// Shim of `criterion::Bencher`: times the routine under measurement.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples (plus one
    /// untimed warm-up), black-boxing the output so it is not optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Shim of `criterion::criterion_group!`. Supports the struct form
/// (`name = ...; config = ...; targets = ...`) and the list form
/// (`criterion_group!(benches, f1, f2)`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Shim of `criterion::criterion_main!`: expands to `fn main` running each
/// group, ignoring the CLI arguments cargo passes to bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        // one warm-up + three samples (test_mode is false under `cargo test`
        // only when --test is absent from argv; accept either count).
        assert!(calls == 4 || calls == 2, "unexpected call count {calls}");
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0000 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.0000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.0000 s");
    }
}
