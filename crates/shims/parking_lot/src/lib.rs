//! Vendored stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset it uses: [`Mutex`], [`RwLock`] and [`Condvar`] whose
//! `lock` / `read` / `write` / `wait` return guards directly instead of
//! `Result`s. Built on `std::sync`, but — like the real crate — *without
//! lock poisoning*: if a holder panicked, the next acquirer simply gets the
//! lock. That property is load-bearing for the long-lived experiment
//! service: one panicking worker must not cascade poison-panics through
//! every other client of a shared queue or cache.

use std::sync::PoisonError;

/// `parking_lot::Mutex` look-alike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly. Never poisons: a
    /// panicked previous holder is recovered from, matching `parking_lot`.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::Condvar` look-alike over `std::sync::Condvar`, paired with
/// the [`Mutex`] above (whose guards are plain `std::sync::MutexGuard`s).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block on the condition, releasing the guard while waiting. Like the
    /// locks, recovers instead of propagating poison.
    pub fn wait<'a, T>(&self, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// `parking_lot::RwLock` look-alike over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn a_panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let result = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies while holding the lock");
        })
        .join();
        assert!(result.is_err(), "the holder thread must have panicked");
        // A std::sync::Mutex would now be poisoned and panic here; the shim
        // recovers, because one dead worker must not take the service down.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cvar.wait(ready);
            }
            true
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
