//! Vendored stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset it uses: [`Mutex`] and [`RwLock`] whose `lock` /
//! `read` / `write` return guards directly instead of `Result`s. Built on
//! `std::sync`; a poisoned lock (a holder panicked) panics here too, which
//! matches how the workspace treats worker panics as fatal.

/// `parking_lot::Mutex` look-alike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .expect("mutex poisoned: a previous holder panicked")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .expect("mutex poisoned: a previous holder panicked")
    }
}

/// `parking_lot::RwLock` look-alike over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .expect("rwlock poisoned: a previous holder panicked")
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .expect("rwlock poisoned: a previous holder panicked")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .expect("rwlock poisoned: a previous holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
