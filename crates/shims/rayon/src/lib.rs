//! Vendored stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *subset* of rayon it actually uses:
//! `slice.par_iter().map(f).collect::<C>()`. Work is genuinely executed in
//! parallel with `std::thread::scope`, chunking the input across
//! `available_parallelism` threads, and results are collected in input order
//! so the substitution is observationally equivalent for pure `f`.
//!
//! Replace with the real rayon (same API surface) when a registry is
//! available; no call sites need to change.

use std::num::NonZeroUsize;
use std::thread;

/// Mirrors `rayon::prelude`: importing it brings the `par_iter` extension
/// trait into scope. The adapter types use inherent methods, so nothing else
/// is needed.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Extension trait adding `par_iter` to slices (and, via deref, `Vec`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each element through `f`, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Evaluate the map in parallel and collect the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let threads = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.items.len().max(1));
        if threads <= 1 || self.items.len() <= 1 {
            return self.items.iter().map(&self.f).collect();
        }

        let chunk_size = self.items.len().div_ceil(threads);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::new();
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_input_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collects_into_result_short_circuit_semantics() {
        let xs: Vec<u64> = (0..100).collect();
        let ok: Result<Vec<u64>, String> = xs.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn works_on_empty_and_single_element_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
