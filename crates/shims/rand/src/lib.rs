//! Vendored stand-in for [rand](https://crates.io/crates/rand) 0.8.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the *subset* of the rand 0.8 API it uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_bool, gen_range}` and
//! `seq::SliceRandom::choose`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the simulated
//! LLM needs (the paper's experiments are seeded sweeps, not cryptography).
//!
//! The stream differs from the real `StdRng` (ChaCha12), so swapping the real
//! crate back in changes sampled faults but nothing about API compatibility.

/// Seedable random generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (mirrors `rand`'s provided method).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling API, mirroring the `rand::Rng` methods we use.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Return `true` with probability `p`. Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is not in [0, 1]"
        );
        // 53 uniform mantissa bits, same construction the real crate documents.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform sample from `[low, high)` over `usize` (Lemire-style rejection).
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return range.start + (raw % span) as usize;
            }
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random selection to slices, mirroring
    /// `rand::seq::SliceRandom::choose`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn choose_covers_the_slice_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
