//! Integration pin for the diagnostics telemetry chain: a model that always
//! injects a compile fault and then always repairs it must leave at least
//! one stable-coded finding in every view of the run artifact — the record
//! set, `diagnostics.json`, and the `diag` events in `trace.jsonl` — with
//! agreeing counts.

use std::path::PathBuf;

use lassi_core::{Direction, PipelineConfig, ScenarioStatus};
use lassi_harness::{read_trace, ArtifactStore, Harness, HarnessOptions, SweepGrid};
use lassi_hecbench::application;
use lassi_llm::gpt4;

fn test_root() -> PathBuf {
    std::env::temp_dir().join(format!("lassi-diag-artifact-{}", std::process::id()))
}

#[test]
fn faulty_model_findings_reach_every_artifact_view() {
    // The deterministic always-fault / always-repair profile from the core
    // pipeline tests: every scenario self-corrects at least once, so the
    // diagnostics document can never legitimately be empty.
    let mut spec = gpt4();
    spec.profile.p_compile_fault = 1.0;
    spec.profile.p_runtime_fault = 0.0;
    spec.profile.p_semantic_fault = 0.0;
    spec.profile.p_perf_regression = 0.0;
    spec.profile.p_repair_success = 1.0;
    spec.profile.p_repair_regression = 0.0;

    let config = PipelineConfig {
        timing_runs: 1,
        seed: 5,
        ..PipelineConfig::default()
    };
    let grid = SweepGrid::single(
        config,
        vec![spec],
        vec![application("entropy").expect("entropy exists")],
        vec![Direction::CudaToOmp],
    );
    let harness = Harness::new(HarnessOptions::default().with_workers(2));
    let jobs = grid.jobs();
    let outputs = harness.submit(jobs.clone()).collect_outputs();
    assert_eq!(outputs.len(), 1);
    let record = &outputs[0].record;
    assert_eq!(
        record.status,
        ScenarioStatus::Success,
        "{:?}",
        record.status
    );
    assert!(record.self_corrections >= 1, "the fault forces a repair");
    assert!(
        !record.diagnostics.is_empty(),
        "the record carries its per-attempt history"
    );

    let root = test_root();
    let _ = std::fs::remove_dir_all(&root);
    let store = ArtifactStore::new(&root);
    grid.write_artifact(
        &store,
        "diagpin",
        true,
        &jobs,
        &outputs,
        harness.cache_snapshot(),
        &[],
    )
    .expect("artifact writes");

    // View 1: the record's own history, counted as individual findings.
    let record_findings: usize = record
        .diagnostics
        .iter()
        .map(|attempt| attempt.diagnostics.len())
        .sum();
    assert!(record_findings >= 1);
    for attempt in &record.diagnostics {
        for diag in &attempt.diagnostics {
            assert!(
                diag.code_str().contains('/'),
                "stable `area/slug` code, got `{}`",
                diag.code_str()
            );
        }
    }

    // View 2: the diagnostics document on disk.
    let run_dir = store.run_dir("diagpin");
    let text = std::fs::read_to_string(run_dir.join(lassi_harness::DIAGNOSTICS_FILE))
        .expect("diagnostics.json exists");
    let doc = lassi_harness::json::parse(&text).expect("diagnostics parse");
    assert_eq!(doc.get("v").and_then(|v| v.as_str()), Some("diag.v1"));
    let scenarios = doc
        .get("scenarios")
        .and_then(|v| v.as_array())
        .expect("scenarios array");
    assert_eq!(scenarios.len(), 1, "one faulty scenario, one entry");
    let doc_findings: usize = scenarios
        .iter()
        .flat_map(|s| s.get("attempts").and_then(|v| v.as_array()).unwrap())
        .map(|attempt| {
            attempt
                .get("diagnostics")
                .and_then(|v| v.as_array())
                .expect("diagnostics array")
                .len()
        })
        .sum();
    assert_eq!(doc_findings, record_findings, "document mirrors the record");

    // View 3: one `diag` trace event per finding, anchored to the job span.
    let events = read_trace(&run_dir).expect("trace parses");
    let diag_events = events.iter().filter(|ev| ev.name == "diag").count();
    assert_eq!(diag_events, record_findings, "trace mirrors the record");

    std::fs::remove_dir_all(&root).unwrap();
}
