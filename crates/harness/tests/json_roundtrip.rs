//! Property tests for the JSON artifact layer: any `TranslationRecord` the
//! pipeline can produce must survive serialize → parse → decode unchanged,
//! including `None` fields, awkward-but-finite floats and strings full of
//! characters that need escaping.

use lassi_core::{AttemptDiagnostics, ScenarioStatus, TranslationRecord};
use lassi_harness::codec::{record_from_json, record_to_json};
use lassi_harness::json::{parse, Json};
use lassi_lang::{Diagnostic, Dialect, Severity};
use proptest::prelude::*;

fn status_from_index(i: u32) -> ScenarioStatus {
    match i % 5 {
        0 => ScenarioStatus::Success,
        1 => ScenarioStatus::BaselineFailed,
        2 => ScenarioStatus::CompileGaveUp,
        3 => ScenarioStatus::ExecuteGaveUp,
        _ => ScenarioStatus::OutputMismatch,
    }
}

fn severity_from_index(i: u32) -> Severity {
    match i % 3 {
        0 => Severity::Note,
        1 => Severity::Warning,
        _ => Severity::Error,
    }
}

fn stage_from_index(i: u32) -> &'static str {
    match i % 4 {
        0 => "parse",
        1 => "sema",
        2 => "execute",
        _ => "llm",
    }
}

// Characters that exercise the escaper: quotes, backslashes, braces,
// newlines, tabs — the shapes generated ParC code actually contains.
const CODE_PATTERN: &str = "[a-zA-Z0-9 _(){}<>#*&+=.:;,!/\"\\\\\\n\\t-]{0,200}";

fn opt_f64(range: std::ops::Range<f64>) -> BoxedStrategy<Option<f64>> {
    prop_oneof![Just(None), range.prop_map(Some)].boxed()
}

fn opt_code() -> BoxedStrategy<Option<String>> {
    prop_oneof![Just(None), CODE_PATTERN.prop_map(Some)].boxed()
}

// One arbitrary attempt's diagnostics: coded or uncoded, with or without a
// column span and notes — every shape the pipeline can emit.
fn attempts() -> BoxedStrategy<Vec<AttemptDiagnostics>> {
    let diag = (
        (0u32..6, "[a-z/-]{0,16}", 0u32..500),
        (
            0u32..120,
            "[a-zA-Z0-9 '_().\\n-]{0,60}",
            proptest::collection::vec((0u32..500, "[a-zA-Z0-9 '_-]{0,40}"), 0..3),
        ),
    )
        .prop_map(|((sev, code, line), (column, message, notes))| {
            let mut d = Diagnostic {
                severity: severity_from_index(sev),
                code,
                line,
                column,
                message,
                notes: Vec::new(),
            };
            for (line, message) in notes {
                d = d.with_note(line, message);
            }
            d
        });
    proptest::collection::vec(
        (0u32..10, 0u32..8, proptest::collection::vec(diag, 0..4)),
        0..4,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(round, stage, diagnostics)| AttemptDiagnostics {
                round,
                stage: stage_from_index(stage).to_string(),
                diagnostics,
            })
            .collect()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_round_trips_for_arbitrary_contents(
        (name_a, name_m, status_ix, corrections) in (
            "[a-zA-Z0-9 _-]{0,40}",
            "[a-zA-Z0-9 ._-]{0,40}",
            0u32..10,
            0u32..100,
        ),
        (code, generated_runtime, reference_runtime, source_runtime) in (
            opt_code(),
            opt_f64(0.0..1.0e6),
            1.0e-9..1.0e6,
            1.0e-9..1.0e6,
        ),
        (ratio, sim_t, sim_l) in (
            opt_f64(0.0..1.0e3),
            opt_f64(0.0..1.0),
            opt_f64(0.0..1.0),
        ),
        (prompt_tokens, response_tokens, flip) in (0usize..1_000_000, 0usize..1_000_000, 0u32..2),
        diagnostics in attempts(),
    ) {
        let (source_dialect, target_dialect) = if flip == 0 {
            (Dialect::CudaLite, Dialect::OmpLite)
        } else {
            (Dialect::OmpLite, Dialect::CudaLite)
        };
        let record = TranslationRecord {
            application: name_a,
            model: name_m,
            source_dialect,
            target_dialect,
            status: status_from_index(status_ix),
            self_corrections: corrections,
            generated_code: code,
            generated_runtime,
            reference_runtime,
            source_runtime,
            ratio,
            sim_t,
            sim_l,
            prompt_tokens,
            response_tokens,
            diagnostics,
        };

        // Compact and pretty renderings must both decode to the same record.
        let compact = record_to_json(&record).to_compact();
        let decoded = record_from_json(&parse(&compact).unwrap()).unwrap();
        prop_assert_eq!(&decoded, &record);

        let pretty = record_to_json(&record).to_pretty();
        let decoded = record_from_json(&parse(&pretty).unwrap()).unwrap();
        prop_assert_eq!(&decoded, &record);

        // Serialization is deterministic: the same record always renders to
        // the same bytes (this is what byte-identical --replay relies on).
        prop_assert_eq!(record_to_json(&record).to_pretty(), pretty);
    }

    #[test]
    fn arbitrary_strings_survive_json_escaping(s in "[a-zA-Z0-9 \"\\\\\\n\\t\\r{}:,/._-]{0,300}") {
        let value = Json::Str(s.clone());
        prop_assert_eq!(parse(&value.to_compact()).unwrap(), Json::Str(s.clone()));
        prop_assert_eq!(parse(&value.to_pretty()).unwrap(), Json::Str(s));
    }

    #[test]
    fn finite_floats_round_trip_bit_exact(mantissa in -1.0e9..1.0e9, scale in -300.0f64..300.0) {
        let x: f64 = mantissa * 10f64.powf(scale % 30.0);
        prop_assert!(x.is_finite());
        let text = Json::Float(x).to_compact();
        match parse(&text).unwrap() {
            Json::Float(back) => prop_assert_eq!(back.to_bits(), x.to_bits()),
            other => prop_assert!(false, "{} parsed as {:?}", text, other),
        }
    }
}

#[test]
fn record_with_every_none_field_round_trips() {
    let record = TranslationRecord {
        application: String::new(),
        model: String::new(),
        source_dialect: Dialect::CudaLite,
        target_dialect: Dialect::OmpLite,
        status: ScenarioStatus::BaselineFailed,
        self_corrections: 0,
        generated_code: None,
        generated_runtime: None,
        reference_runtime: 0.0,
        source_runtime: 0.0,
        ratio: None,
        sim_t: None,
        sim_l: None,
        prompt_tokens: 0,
        response_tokens: 0,
        diagnostics: Vec::new(),
    };
    let text = record_to_json(&record).to_pretty();
    let back = record_from_json(&parse(&text).unwrap()).unwrap();
    assert_eq!(back, record);
}
