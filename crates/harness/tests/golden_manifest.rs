//! Golden-file test pinning the run-manifest schema. If this fails because
//! the schema deliberately changed, bump `SCHEMA_VERSION`, regenerate the
//! golden file (the failure message prints the new text) and update any
//! readers.

use lassi_harness::codec::{manifest_from_json, manifest_to_json};
use lassi_harness::json::parse;
use lassi_harness::{RunManifest, SCHEMA_VERSION};

const GOLDEN: &str = include_str!("golden/run-manifest.v1.json");

fn fixed_manifest() -> RunManifest {
    RunManifest {
        schema_version: SCHEMA_VERSION,
        run_id: "golden".into(),
        package_version: "0.1.0".into(),
        git_commit: Some("0123abc".into()),
        created_unix: Some(1_700_000_000),
        seed: 20240704,
        timing_runs: vec![1, 3],
        max_self_corrections: vec![10, 40],
        models: vec!["GPT-4".into(), "Codestral".into()],
        applications: vec!["layout".into(), "entropy".into()],
        directions: vec!["cuda-to-omp".into(), "omp-to-cuda".into()],
        record_sets: vec![
            "cuda-to-omp-msc10-runs1".into(),
            "omp-to-cuda-msc40-runs3".into(),
        ],
        scenarios: 16,
        cache_hits: 12,
        cache_misses: 4,
    }
}

#[test]
fn manifest_schema_matches_the_golden_file() {
    let mut rendered = manifest_to_json(&fixed_manifest()).to_pretty();
    rendered.push('\n');
    assert_eq!(
        rendered, GOLDEN,
        "manifest schema drifted; if intentional, bump SCHEMA_VERSION and \
         regenerate tests/golden/run-manifest.v1.json with the text above"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_manifest() {
    let loaded = manifest_from_json(&parse(GOLDEN).unwrap()).unwrap();
    assert_eq!(loaded, fixed_manifest());
}

#[test]
fn absent_optional_fields_serialize_as_null_and_load_as_none() {
    let manifest = RunManifest::new("minimal", 7);
    let text = manifest_to_json(&manifest).to_pretty();
    assert!(text.contains("\"git_commit\": null"));
    assert!(text.contains("\"created_unix\": null"));
    let back = manifest_from_json(&parse(&text).unwrap()).unwrap();
    assert_eq!(back.git_commit, None);
    assert_eq!(back.created_unix, None);
}
