//! Property test for the lease table: no schedule of grants, heartbeats,
//! expiries, corrupt-completion failures and (possibly duplicate or stale)
//! record deliveries may ever lose a job or duplicate one in the requeue
//! set. After any such schedule the table must still drain to completion —
//! if it cannot, a job leaked out of the {pending, active-lease, completed}
//! partition somewhere along the way.

use lassi_harness::lease::LeaseTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn no_schedule_loses_or_duplicates_jobs(
        total in 1usize..24,
        ops in proptest::collection::vec((0u32..6, 0usize..32, 1usize..8), 0..80),
    ) {
        let mut table = LeaseTable::new("prop", total);
        let mut now: u64 = 0;
        let pick_lease = |table: &LeaseTable, pick: usize| -> Option<String> {
            let leases = table.leases();
            (!leases.is_empty()).then(|| leases[pick % leases.len()].lease_id.clone())
        };
        for (op, pick, size) in ops {
            match op {
                // A worker pulls a batch.
                0 => {
                    table.grant(&format!("w{}", pick % 4), size, now, 100);
                }
                // A worker heartbeats some lease (possibly a dead one).
                1 => {
                    if let Some(id) = pick_lease(&table, pick) {
                        let _ = table.heartbeat(&id, now, 100);
                    }
                }
                // A worker settles some lease and delivers its records —
                // stale settles deliver duplicates, first-write-wins.
                2 => {
                    if let Some(id) = pick_lease(&table, pick) {
                        if let Ok((jobs, _)) = table.settle(&id) {
                            for job in jobs {
                                table.record_job(job);
                            }
                        }
                    }
                }
                // Time passes; the reclaimer sweeps expired leases.
                3 => {
                    now += size as u64 * 40;
                    table.reclaim_expired(now);
                }
                // A corrupt completion fails some lease immediately.
                4 => {
                    if let Some(id) = pick_lease(&table, pick) {
                        let _ = table.fail_lease(&id);
                    }
                }
                // A stray late record lands for an arbitrary job.
                _ => {
                    table.record_job(pick % total);
                }
            }
            if let Err(violation) = table.check_invariant() {
                panic!("invariant broken after op {op}: {violation}");
            }
        }

        // Whatever the schedule did, the table must still drain: reclaim
        // everything in flight, then grant/settle until complete.
        now += 1_000_000;
        table.reclaim_expired(now);
        while !table.is_complete() {
            let id = match table.grant("drain", 8, now, 100) {
                Some(lease) => lease.lease_id.clone(),
                None => panic!(
                    "{} jobs uncompleted but nothing pending — a job was lost",
                    total - table.completed_count()
                ),
            };
            let (jobs, was_active) = table.settle(&id).unwrap();
            prop_assert!(was_active);
            for job in jobs {
                table.record_job(job);
            }
        }
        table.check_invariant().unwrap();
        prop_assert_eq!(table.completed_count(), total);
        prop_assert_eq!(table.pending_count(), 0);
        prop_assert_eq!(table.active_leases(), 0);
    }
}
