//! Multi-client correctness: one shared `Harness` + `ScenarioCache` used by
//! N threads submitting overlapping grids concurrently (the HTTP service's
//! exact usage pattern) must produce record sets identical to a serial run,
//! with cache counters that account for every lookup.

use std::sync::Arc;
use std::thread;

use lassi_core::{Direction, PipelineConfig};
use lassi_harness::{direction_jobs, Harness, HarnessOptions, Job, ScenarioCache};
use lassi_hecbench::{application, Application};
use lassi_llm::{gpt4, ModelSpec};

fn config() -> PipelineConfig {
    PipelineConfig {
        timing_runs: 1,
        ..PipelineConfig::default()
    }
}

/// Client `i`'s grid: a two-application window starting at `i`, wrapping
/// around a four-application list — adjacent clients overlap on one app.
fn client_jobs(i: usize) -> Vec<Job> {
    let names = ["layout", "entropy", "bsearch", "colorwheel"];
    let apps: Vec<Application> = (0..2)
        .map(|k| application(names[(i + k) % names.len()]).expect("known app"))
        .collect();
    let models: Vec<ModelSpec> = vec![gpt4()];
    direction_jobs(Direction::CudaToOmp, &config(), &models, &apps)
}

#[test]
fn concurrent_clients_match_serial_runs_and_counters_add_up() {
    const CLIENTS: usize = 4;

    // Serial baseline: every client's grid, run without any harness or
    // cache in the picture.
    let serial: Vec<Vec<_>> = (0..CLIENTS)
        .map(|i| client_jobs(i).iter().map(Job::run).collect())
        .collect();

    let harness = Arc::new(
        Harness::new(HarnessOptions::default().with_workers(CLIENTS))
            .with_shared_cache(Arc::new(ScenarioCache::in_memory())),
    );

    let concurrent: Vec<Vec<_>> = {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let harness = Arc::clone(&harness);
                thread::spawn(move || harness.submit(client_jobs(i)).collect_ordered())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    };

    // Identical records, per client, in submission order.
    for (i, (serial_records, concurrent_records)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(
            serial_records, concurrent_records,
            "client {i}'s concurrent records differ from its serial run"
        );
    }

    // Counter bookkeeping: every submitted job was exactly one hit or one
    // miss, every miss was stored, and every distinct scenario missed at
    // least once (two clients racing the same cold key may both miss, so
    // misses can exceed the distinct count but never the total).
    let total: u64 = (0..CLIENTS).map(|i| client_jobs(i).len() as u64).sum();
    let distinct = {
        let mut keys: Vec<u64> = (0..CLIENTS)
            .flat_map(|i| {
                client_jobs(i)
                    .iter()
                    .map(|j| j.cache_key().0)
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len() as u64
    };
    let snap = harness.cache_snapshot();
    assert_eq!(
        snap.hits + snap.misses,
        total,
        "every lookup must be counted exactly once"
    );
    assert_eq!(snap.stores, snap.misses, "every miss is stored");
    assert!(
        snap.misses >= distinct && snap.misses <= total,
        "misses {} outside [{distinct}, {total}]",
        snap.misses
    );

    // A warm resubmission from yet another client is pure hits and returns
    // the same records again.
    let before = harness.cache_snapshot();
    let warm = harness.submit(client_jobs(0)).collect_ordered();
    assert_eq!(warm, serial[0]);
    let delta_misses = harness.cache_snapshot().misses - before.misses;
    assert_eq!(delta_misses, 0, "warm client must be served from cache");
}
