//! Stress the sharded scenario cache: N threads hammering M keys through
//! every shard concurrently must keep the counter invariants exact
//! (`hits + misses == lookups`, `stores == misses` under store-on-miss),
//! and an explicit `flush()` must make every store visible on disk to a
//! fresh cache instance — without dropping the original.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use lassi_core::{Direction, PipelineConfig, TranslationRecord};
use lassi_harness::{Job, ScenarioCache, ScenarioKey, SHARD_COUNT};
use lassi_hecbench::application;
use lassi_llm::gpt4;

const THREADS: usize = 8;
const KEYS: usize = 64;
const ROUNDS: usize = 4;

fn test_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lassi-shard-stress-{}-{label}", std::process::id()))
}

fn sample_record() -> TranslationRecord {
    Job::new(
        application("layout").expect("layout exists"),
        gpt4(),
        Direction::CudaToOmp,
        PipelineConfig {
            timing_runs: 1,
            ..PipelineConfig::default()
        },
    )
    .run()
}

/// Synthetic keys spread deliberately across every shard: the low bits walk
/// the shard index, the high bits make each key distinct.
fn keys() -> Vec<ScenarioKey> {
    (0..KEYS as u64)
        .map(|i| ScenarioKey((i << 32) | (i % SHARD_COUNT as u64)))
        .collect()
}

#[test]
fn concurrent_threads_keep_counters_exact() {
    let cache = Arc::new(ScenarioCache::in_memory());
    let record = sample_record();
    let lookups = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let record = record.clone();
            let lookups = Arc::clone(&lookups);
            thread::spawn(move || {
                // Each thread walks the key set from a different offset so
                // shards see genuinely interleaved traffic, storing on miss
                // exactly like a harness worker.
                let keys = keys();
                for round in 0..ROUNDS {
                    for i in 0..KEYS {
                        let key = keys[(i + t + round) % KEYS];
                        lookups.fetch_add(1, Ordering::Relaxed);
                        if cache.lookup(key).is_none() {
                            cache.store(key, &record);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("stress thread");
    }

    let snap = cache.snapshot();
    let total = lookups.load(Ordering::Relaxed);
    assert_eq!(total, (THREADS * ROUNDS * KEYS) as u64);
    assert_eq!(
        snap.hits + snap.misses,
        total,
        "every lookup is exactly one hit or one miss"
    );
    assert_eq!(snap.stores, snap.misses, "store-on-miss stores every miss");
    // Every distinct key missed at least once; racing threads may both miss
    // the same cold key, but never more often than once per thread.
    assert!(snap.misses >= KEYS as u64);
    assert!(snap.misses <= (KEYS * THREADS) as u64);
    // After the stress, every key is resident: a sweep re-walk is all hits.
    let before = cache.snapshot();
    for key in keys() {
        assert!(cache.lookup(key).is_some());
    }
    let delta = cache.snapshot().since(before);
    assert_eq!((delta.hits, delta.misses), (KEYS as u64, 0));
}

#[test]
fn flush_publishes_concurrent_stores_to_disk() {
    let dir = test_dir("flush");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(ScenarioCache::on_disk(&dir).expect("cache dir"));
    let record = sample_record();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let record = record.clone();
            thread::spawn(move || {
                for key in keys()
                    .into_iter()
                    .skip(t * (KEYS / THREADS))
                    .take(KEYS / THREADS)
                {
                    cache.store(key, &record);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("store thread");
    }

    // The writer thread batches; flush() is the visibility barrier.
    cache.flush();
    let files = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert_eq!(files, KEYS, "every store is a complete file after flush()");

    // A fresh instance (separate process stand-in) reads them all back.
    let fresh = ScenarioCache::on_disk(&dir).expect("fresh cache");
    for key in keys() {
        assert_eq!(fresh.lookup(key).as_ref(), Some(&record));
    }
    let snap = fresh.snapshot();
    assert_eq!((snap.hits, snap.misses), (KEYS as u64, 0));

    drop(fresh);
    drop(cache);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
