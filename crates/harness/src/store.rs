//! The JSON artifact store: `artifacts/run-<id>/` directories holding a run
//! manifest, record sets, outcome sets and aggregate summaries — everything
//! needed to re-render tables without re-running the sweep.
//!
//! Layout of one run directory:
//!
//! ```text
//! artifacts/run-<id>/
//!   manifest.json             # RunManifest: seed, config grid, version, cache stats
//!   records-<set>.json        # TranslationRecord array per record set
//!   summary-<set>.json        # AggregateStats per record set (optional)
//!   diagnostics.json          # diag.v1 per-scenario diagnostic history
//!   table4.json               # Table IV rows (table4 binary only)
//! ```
//!
//! Record-set names are caller-chosen slugs (e.g. `omp-to-cuda`, or
//! `cuda-to-omp-msc10-runs1` for grid sweeps) and are listed in the
//! manifest, so a loader can enumerate a run without globbing.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use lassi_core::{Table4Row, TranslationRecord};
use lassi_metrics::AggregateStats;

use crate::codec::{
    self, manifest_from_json, manifest_to_json, records_from_json, records_to_json, CodecError,
};
use crate::json::{self, Json, ParseError};
use crate::runstate::RunStatus;

/// Artifact schema version; bump on breaking layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// File name of a run's structured diagnostics document. Deliberately not a
/// manifest record set: record sets are `TranslationRecord` arrays that
/// `verify`/`--replay` decode, while this is a `diag.v1` document keyed by
/// scenario.
pub const DIAGNOSTICS_FILE: &str = "diagnostics.json";

/// Everything recorded about a run besides the records themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Artifact schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Caller-chosen run identifier (the `<id>` in `run-<id>/`).
    pub run_id: String,
    /// `lassi-harness` package version that wrote the artifact.
    pub package_version: String,
    /// `git rev-parse --short HEAD` at write time, when available.
    pub git_commit: Option<String>,
    /// Unix timestamp at write time; `None` keeps golden files stable.
    pub created_unix: Option<u64>,
    /// Base RNG seed of the sweep.
    pub seed: u64,
    /// Grid values swept for `timing_runs`.
    pub timing_runs: Vec<u32>,
    /// Grid values swept for `max_self_corrections`.
    pub max_self_corrections: Vec<u32>,
    /// Model names in sweep order.
    pub models: Vec<String>,
    /// Application names in sweep order.
    pub applications: Vec<String>,
    /// Direction slugs in sweep order.
    pub directions: Vec<String>,
    /// Record-set slugs present in the run directory.
    pub record_sets: Vec<String>,
    /// Total scenarios executed (or served from cache).
    pub scenarios: usize,
    /// Cache hits during the run (0 when no cache was attached).
    pub cache_hits: u64,
    /// Cache misses during the run.
    pub cache_misses: u64,
}

impl RunManifest {
    /// A manifest with only identity fields filled in; callers set the rest.
    pub fn new(run_id: impl Into<String>, seed: u64) -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            run_id: run_id.into(),
            package_version: env!("CARGO_PKG_VERSION").to_string(),
            git_commit: None,
            created_unix: None,
            seed,
            timing_runs: Vec::new(),
            max_self_corrections: Vec::new(),
            models: Vec::new(),
            applications: Vec::new(),
            directions: Vec::new(),
            record_sets: Vec::new(),
            scenarios: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

/// True for identifiers safe to embed in a filename: non-empty ASCII
/// `[A-Za-z0-9._-]` and not composed entirely of dots (`.`/`..`), which
/// rules out traversal, empty segments and separators. This is the single
/// definition both the artifact store and the HTTP router validate against.
pub fn is_slug(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        && !s.bytes().all(|b| b == b'.')
}

/// Best-effort `git rev-parse --short HEAD`, for the manifest version field.
pub fn detect_git_commit() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let commit = String::from_utf8(output.stdout).ok()?.trim().to_string();
    (!commit.is_empty()).then_some(commit)
}

/// Anything that can go wrong reading an artifact back.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file was not valid JSON.
    Json(ParseError),
    /// The JSON did not match the schema.
    Codec(CodecError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact JSON error: {e}"),
            ArtifactError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<ParseError> for ArtifactError {
    fn from(e: ParseError) -> Self {
        ArtifactError::Json(e)
    }
}

impl From<CodecError> for ArtifactError {
    fn from(e: CodecError) -> Self {
        ArtifactError::Codec(e)
    }
}

/// The root of the artifact tree (default `artifacts/`).
pub struct ArtifactStore {
    root: PathBuf,
}

impl Default for ArtifactStore {
    fn default() -> Self {
        ArtifactStore::new("artifacts")
    }
}

impl ArtifactStore {
    /// A store rooted at `root` (not created until a run is written).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ArtifactStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory a run id maps to.
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join(format!("run-{run_id}"))
    }

    /// The conventional scenario-cache directory inside this store.
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    /// Create a *fresh* run directory and return a writer for it.
    ///
    /// Errors with [`io::ErrorKind::AlreadyExists`] when `run-<id>/` is
    /// already present: silently reusing it would mix record files from
    /// different runs into one artifact. Callers that intentionally
    /// regenerate a fixed run id use [`ArtifactStore::create_or_replace_run`].
    pub fn create_run(&self, run_id: &str) -> io::Result<RunWriter> {
        let dir = self.run_dir(run_id);
        if dir.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "run directory {} already exists; pick a fresh run id \
                     or replace the run explicitly",
                    dir.display()
                ),
            ));
        }
        std::fs::create_dir_all(&dir)?;
        Ok(RunWriter { dir })
    }

    /// Create a run directory, deleting any previous run under the same id
    /// first — the whole directory is replaced, never merged, so no stale
    /// record set from an earlier run can survive into the new artifact.
    pub fn create_or_replace_run(&self, run_id: &str) -> io::Result<RunWriter> {
        let dir = self.run_dir(run_id);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Ok(RunWriter { dir })
    }

    /// Load a run by id.
    pub fn load_run(&self, run_id: &str) -> Result<RunArtifact, ArtifactError> {
        RunArtifact::load(self.run_dir(run_id))
    }

    /// Atomically claim `run-<id>` by creating its (empty) directory.
    ///
    /// Unlike [`ArtifactStore::create_run`]'s exists-then-create sequence,
    /// the single `create_dir` makes this race-free: of two concurrent
    /// claimants exactly one succeeds and the other gets
    /// [`io::ErrorKind::AlreadyExists`]. The HTTP service reserves the id
    /// this way *before* running a sweep, then writes into the claimed
    /// directory with [`ArtifactStore::create_or_replace_run`].
    pub fn reserve_run(&self, run_id: &str) -> io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        std::fs::create_dir(self.run_dir(run_id))
    }

    /// Delete a run directory and everything in it.
    ///
    /// Refuses ids that are not plain slugs ([`is_slug`]) with
    /// [`io::ErrorKind::InvalidInput`] — an id with a path separator or
    /// `..` must never reach the filesystem — and maps a missing run to
    /// [`io::ErrorKind::NotFound`]. A run that is still *live* is refused
    /// with [`io::ErrorKind::Other`]: a directory whose `state.json` says
    /// `queued`/`running`, or a bare reservation with neither a manifest
    /// nor a lifecycle file, may still be computed into — deleting it
    /// would let a second client re-reserve the id and race the first
    /// sweep's artifact write. Deletable runs are completed artifacts
    /// (manifest on disk) and terminally `failed`/`cancelled` runs (only a
    /// `state.json` remains). The scenario cache (`cache/`) is
    /// structurally out of reach: runs live under `run-<id>`, and this
    /// method only ever removes such a directory.
    pub fn delete_run(&self, run_id: &str) -> io::Result<()> {
        if !is_slug(run_id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("run id `{run_id}` is not a valid slug"),
            ));
        }
        let dir = self.run_dir(run_id);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("run `{run_id}` does not exist"),
            ));
        }
        if !dir.join("manifest.json").is_file() {
            let terminal = matches!(
                RunStatus::load(&dir), Ok(status) if status.state.is_terminal()
            );
            if !terminal {
                return Err(io::Error::other(format!(
                    "run `{run_id}` is still live (reserved, queued or \
                     running); refusing to delete an in-flight run"
                )));
            }
        }
        std::fs::remove_dir_all(dir)
    }

    /// The run ids present under the store root, sorted lexicographically.
    ///
    /// Only directories named `run-<id>` that contain a `manifest.json`
    /// count: the scenario cache (`cache/`), stray files and half-written
    /// runs are skipped. A missing store root is an empty store, not an
    /// error — nothing has been written yet.
    pub fn list_runs(&self) -> io::Result<Vec<String>> {
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut runs = Vec::new();
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|n| n.strip_prefix("run-")) else {
                continue;
            };
            if !id.is_empty() && entry.path().join("manifest.json").is_file() {
                runs.push(id.to_string());
            }
        }
        runs.sort();
        Ok(runs)
    }

    /// Every run the store knows about — including queued, running, failed
    /// and cancelled runs that only have a `state.json` — as
    /// `(id, ScannedRun)`, sorted by id.
    ///
    /// [`ScannedRun::Legacy`] is an artifact written before lifecycle
    /// tracking (manifest but no `state.json`): callers should treat it as
    /// `done`. A torn or truncated `state.json` (a crash mid-write that
    /// never reached the rename) surfaces as [`ScannedRun::Corrupt`] so
    /// recovery can mark the run `failed` with a clear reason instead of
    /// silently skipping — or panicking over — it. Bare reservations
    /// (neither file) are skipped, the same way
    /// [`ArtifactStore::list_runs`] skips half-written runs.
    pub fn scan_runs(&self) -> io::Result<Vec<(String, ScannedRun)>> {
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut runs = Vec::new();
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|n| n.strip_prefix("run-")) else {
                continue;
            };
            if id.is_empty() {
                continue;
            }
            match RunStatus::load(&entry.path()) {
                Ok(status) => runs.push((id.to_string(), ScannedRun::Status(status))),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    if entry.path().join("manifest.json").is_file() {
                        runs.push((id.to_string(), ScannedRun::Legacy));
                    }
                }
                Err(e) => runs.push((id.to_string(), ScannedRun::Corrupt(e.to_string()))),
            }
        }
        runs.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(runs)
    }
}

/// What [`ArtifactStore::scan_runs`] found inside one `run-<id>/`.
#[derive(Debug, Clone, PartialEq)]
pub enum ScannedRun {
    /// A readable `state.json`.
    Status(RunStatus),
    /// A pre-lifecycle artifact: manifest but no `state.json` (treat as
    /// `done`).
    Legacy,
    /// `state.json` exists but is torn, truncated or malformed; the string
    /// is the decode error.
    Corrupt(String),
}

/// Writes the files of one run directory.
pub struct RunWriter {
    dir: PathBuf,
}

impl RunWriter {
    /// The run directory being written.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_file(&self, name: &str, value: &Json) -> io::Result<()> {
        let mut text = value.to_pretty();
        text.push('\n');
        std::fs::write(self.dir.join(name), text)
    }

    /// Write `manifest.json`.
    pub fn write_manifest(&self, manifest: &RunManifest) -> io::Result<()> {
        self.write_file("manifest.json", &manifest_to_json(manifest))
    }

    /// Write one record set as `records-<set>.json`.
    pub fn write_records(&self, set: &str, records: &[TranslationRecord]) -> io::Result<()> {
        self.write_file(&format!("records-{set}.json"), &records_to_json(records))
    }

    /// Write one aggregate summary as `summary-<set>.json`.
    pub fn write_summary(&self, set: &str, stats: &AggregateStats) -> io::Result<()> {
        self.write_file(&format!("summary-{set}.json"), &codec::stats_to_json(stats))
    }

    /// Write the run's `diag.v1` diagnostics document as `diagnostics.json`.
    pub fn write_diagnostics(&self, document: &Json) -> io::Result<()> {
        self.write_file(DIAGNOSTICS_FILE, document)
    }

    /// Write Table IV rows as `table4.json`.
    pub fn write_table4(&self, rows: &[Table4Row]) -> io::Result<()> {
        let value = Json::Array(rows.iter().map(codec::table4_row_to_json).collect());
        self.write_file("table4.json", &value)
    }
}

/// A run directory loaded back from disk.
#[derive(Debug)]
pub struct RunArtifact {
    dir: PathBuf,
    /// The parsed manifest.
    pub manifest: RunManifest,
}

impl RunArtifact {
    /// Load `manifest.json` from a run directory.
    pub fn load(dir: impl Into<PathBuf>) -> Result<RunArtifact, ArtifactError> {
        let dir = dir.into();
        let text = std::fs::read_to_string(dir.join("manifest.json"))?;
        let manifest = manifest_from_json(&json::parse(&text)?)?;
        Ok(RunArtifact { dir, manifest })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn read_json(&self, name: &str) -> Result<Json, ArtifactError> {
        let text = std::fs::read_to_string(self.dir.join(name))?;
        Ok(json::parse(&text)?)
    }

    /// Load one record set.
    pub fn records(&self, set: &str) -> Result<Vec<TranslationRecord>, ArtifactError> {
        Ok(records_from_json(
            &self.read_json(&format!("records-{set}.json"))?,
        )?)
    }

    /// Load one aggregate summary.
    pub fn summary(&self, set: &str) -> Result<AggregateStats, ArtifactError> {
        Ok(codec::stats_from_json(
            &self.read_json(&format!("summary-{set}.json"))?,
        )?)
    }

    /// Load Table IV rows.
    pub fn table4(&self) -> Result<Vec<Table4Row>, ArtifactError> {
        self.read_json("table4.json")?
            .as_array()
            .ok_or_else(|| CodecError("table4.json must be an array".into()).into())
            .and_then(|rows| {
                rows.iter()
                    .map(|r| codec::table4_row_from_json(r).map_err(ArtifactError::from))
                    .collect()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_core::{Direction, PipelineConfig};
    use lassi_hecbench::application;
    use lassi_llm::gpt4;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn test_root(label: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lassi-store-test-{}-{label}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn run_round_trips_through_disk() {
        let root = test_root("roundtrip");
        let store = ArtifactStore::new(&root);
        let config = PipelineConfig {
            timing_runs: 1,
            ..PipelineConfig::default()
        };
        let record = lassi_core::run_scenario(
            &gpt4(),
            &application("layout").unwrap(),
            Direction::CudaToOmp,
            &config,
        );
        let records = vec![record];
        let outcomes = lassi_core::scenario_outcomes(&records);
        let stats = AggregateStats::from_outcomes(&outcomes);

        let mut manifest = RunManifest::new("test", config.seed);
        manifest.timing_runs = vec![1];
        manifest.max_self_corrections = vec![config.max_self_corrections];
        manifest.models = vec!["GPT-4".into()];
        manifest.applications = vec!["layout".into()];
        manifest.directions = vec![Direction::CudaToOmp.slug().into()];
        manifest.record_sets = vec!["cuda-to-omp".into()];
        manifest.scenarios = 1;

        let writer = store.create_run("test").unwrap();
        writer.write_manifest(&manifest).unwrap();
        writer.write_records("cuda-to-omp", &records).unwrap();
        writer.write_summary("cuda-to-omp", &stats).unwrap();

        let loaded = store.load_run("test").unwrap();
        assert_eq!(loaded.manifest, manifest);
        assert_eq!(loaded.records("cuda-to-omp").unwrap(), records);
        assert_eq!(loaded.summary("cuda-to-omp").unwrap(), stats);

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn table4_rows_round_trip() {
        let root = test_root("table4");
        let store = ArtifactStore::new(&root);
        let rows = vec![Table4Row {
            category: "Math".into(),
            application: "jacobi".into(),
            runtime_args: "[]".into(),
            cuda_seconds: 0.25,
            omp_seconds: 1.5,
        }];
        let writer = store.create_run("t4").unwrap();
        writer.write_table4(&rows).unwrap();
        writer.write_manifest(&RunManifest::new("t4", 0)).unwrap();
        let loaded = store.load_run("t4").unwrap();
        assert_eq!(loaded.table4().unwrap(), rows);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn creating_an_existing_run_errors_and_replace_starts_clean() {
        let root = test_root("collision");
        let store = ArtifactStore::new(&root);
        let writer = store.create_run("dup").unwrap();
        writer.write_manifest(&RunManifest::new("dup", 0)).unwrap();
        std::fs::write(writer.dir().join("records-stale.json"), "[]").unwrap();

        // A second run under the same id must not merge into the first.
        match store.create_run("dup") {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AlreadyExists),
            Ok(_) => panic!("colliding create_run must error"),
        }

        // Replacing wipes the stale files rather than mixing them in.
        let writer = store.create_or_replace_run("dup").unwrap();
        writer.write_manifest(&RunManifest::new("dup", 1)).unwrap();
        assert!(!writer.dir().join("records-stale.json").exists());
        assert_eq!(store.load_run("dup").unwrap().manifest.seed, 1);

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reserve_run_claims_atomically_and_is_not_listed() {
        let root = test_root("reserve");
        let store = ArtifactStore::new(&root);
        store.reserve_run("claimed").unwrap();
        assert_eq!(
            store.reserve_run("claimed").unwrap_err().kind(),
            std::io::ErrorKind::AlreadyExists,
            "the second claimant must lose"
        );
        // A reserved-but-unwritten run has no manifest yet, so it does not
        // surface in listings.
        assert_eq!(store.list_runs().unwrap(), Vec::<String>::new());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn list_runs_is_sorted_and_skips_non_run_entries() {
        let root = test_root("list");
        let store = ArtifactStore::new(&root);
        assert_eq!(store.list_runs().unwrap(), Vec::<String>::new());

        for id in ["zeta", "alpha", "mid"] {
            let writer = store.create_run(id).unwrap();
            writer.write_manifest(&RunManifest::new(id, 0)).unwrap();
        }
        // Non-run clutter that must be skipped: the scenario cache, a stray
        // file, a run directory with no manifest, and an unrelated directory.
        std::fs::create_dir_all(root.join("cache")).unwrap();
        std::fs::create_dir_all(root.join("run-halfwritten")).unwrap();
        std::fs::create_dir_all(root.join("not-a-run")).unwrap();
        std::fs::write(root.join("run-file"), "not a directory").unwrap();

        assert_eq!(store.list_runs().unwrap(), vec!["alpha", "mid", "zeta"]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn delete_run_removes_exactly_one_run() {
        let root = test_root("delete");
        let store = ArtifactStore::new(&root);
        for id in ["keep", "gone"] {
            let writer = store.create_run(id).unwrap();
            writer.write_manifest(&RunManifest::new(id, 0)).unwrap();
        }
        std::fs::create_dir_all(store.cache_dir()).unwrap();

        store.delete_run("gone").unwrap();
        assert_eq!(store.list_runs().unwrap(), vec!["keep"]);
        assert!(store.cache_dir().is_dir(), "the cache is untouched");

        // Missing runs are NotFound; malformed ids never hit the filesystem.
        assert_eq!(
            store.delete_run("gone").unwrap_err().kind(),
            std::io::ErrorKind::NotFound
        );
        for bad in ["", ".", "..", "a/b", "../keep"] {
            assert_eq!(
                store.delete_run(bad).unwrap_err().kind(),
                std::io::ErrorKind::InvalidInput,
                "{bad:?}"
            );
        }

        // A reserved (manifest-less) run is in flight: deleting it would
        // let a second client re-reserve the id mid-sweep, so it is refused.
        store.reserve_run("inflight").unwrap();
        assert_eq!(
            store.delete_run("inflight").unwrap_err().kind(),
            std::io::ErrorKind::Other
        );
        assert!(store.run_dir("inflight").is_dir(), "reservation survives");

        assert_eq!(store.list_runs().unwrap(), vec!["keep"]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scan_runs_surfaces_torn_state_files() {
        let root = test_root("scan");
        let store = ArtifactStore::new(&root);

        let good = root.join("run-good");
        std::fs::create_dir_all(&good).unwrap();
        crate::runstate::RunStatus::queued("good", 4)
            .save(&good)
            .unwrap();

        let legacy = root.join("run-legacy");
        std::fs::create_dir_all(&legacy).unwrap();
        std::fs::write(legacy.join("manifest.json"), "{}\n").unwrap();

        // A torn write: the process died mid-`state.json.tmp` and the
        // rename never happened — but a *partial* direct write is the
        // worst case, so simulate that.
        let torn = root.join("run-torn");
        std::fs::create_dir_all(&torn).unwrap();
        let full = crate::runstate::RunStatus::queued("torn", 4)
            .to_json()
            .to_pretty();
        std::fs::write(torn.join("state.json"), &full[..full.len() / 2]).unwrap();

        // A bare reservation stays invisible.
        std::fs::create_dir_all(root.join("run-bare")).unwrap();

        let scanned = store.scan_runs().unwrap();
        let ids: Vec<&str> = scanned.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["good", "legacy", "torn"]);
        assert!(matches!(&scanned[0].1, ScannedRun::Status(s) if s.run_id == "good"));
        assert_eq!(scanned[1].1, ScannedRun::Legacy);
        assert!(
            matches!(&scanned[2].1, ScannedRun::Corrupt(_)),
            "torn state.json must surface, not be skipped: {:?}",
            scanned[2].1
        );

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn loading_a_missing_run_is_an_io_error() {
        let store = ArtifactStore::new(test_root("missing"));
        match store.load_run("nope") {
            Err(ArtifactError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
