//! The experiment service: a bounded job queue drained by a worker pool,
//! streaming [`TranslationRecord`]s back as scenarios complete.
//!
//! A [`Job`] is one (application × model × direction × config) scenario —
//! the same unit [`lassi_core::run_scenario`] executes. The [`Harness`]
//! feeds jobs through a [`BoundedQueue`] (backpressure against huge grids),
//! each worker consults the optional [`ScenarioCache`] before running the
//! pipeline, and completed [`JobOutput`]s arrive on a channel in completion
//! order with per-job wall-clock timing split into queue wait (push → pop)
//! and execution (pop → record). Submission order is preserved in
//! [`JobStream::collect_ordered`], so sweeps render tables identically to
//! the old blocking `par_iter` path. Cancellation discards queued work and
//! lets in-flight scenarios finish. Every completion feeds the process-wide
//! metrics registry (`lassi_jobs_completed_total`,
//! `lassi_job_queue_wait_seconds`, `lassi_job_execute_seconds`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

use lassi_core::{run_scenario, Direction, PipelineConfig, TranslationRecord};
use lassi_hecbench::Application;
use lassi_llm::ModelSpec;

use crate::cache::{scenario_key, CacheSnapshot, ScenarioCache, ScenarioKey};
use crate::queue::BoundedQueue;

/// One schedulable scenario.
#[derive(Debug, Clone)]
pub struct Job {
    /// The benchmark application.
    pub application: Application,
    /// The simulated model.
    pub model: ModelSpec,
    /// Translation direction.
    pub direction: Direction,
    /// Full pipeline configuration (grid sweeps override fields per job).
    pub config: PipelineConfig,
}

impl Job {
    /// Build a job.
    pub fn new(
        application: Application,
        model: ModelSpec,
        direction: Direction,
        config: PipelineConfig,
    ) -> Job {
        Job {
            application,
            model,
            direction,
            config,
        }
    }

    /// The deterministic seed this job's pipeline instance will use.
    pub fn scenario_seed(&self) -> u64 {
        self.config
            .model_scenario_seed(self.model.name, self.application.name, self.direction)
    }

    /// The content-addressed cache key.
    pub fn cache_key(&self) -> ScenarioKey {
        scenario_key(self)
    }

    /// Run the scenario synchronously (what a worker does on a cache miss).
    pub fn run(&self) -> TranslationRecord {
        run_scenario(&self.model, &self.application, self.direction, &self.config)
    }
}

/// A completed job, streamed back to the submitter.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Submission index (0-based), for re-establishing submission order.
    pub index: usize,
    /// The job's direction (handy when one stream mixes directions).
    pub direction: Direction,
    /// The scenario record.
    pub record: TranslationRecord,
    /// Wall-clock seconds this job took on its worker (cache hits ~0).
    pub wall_seconds: f64,
    /// Seconds the job sat in the bounded queue before a worker popped it.
    pub queue_seconds: f64,
    /// True when the record came from the scenario cache.
    pub from_cache: bool,
}

/// Tuning knobs for the service.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Worker threads. Defaults to `available_parallelism`.
    pub workers: usize,
    /// Bounded queue capacity. `None` (the default) derives `2 × workers`
    /// at submission time, so overriding the worker count *after*
    /// construction still yields a queue proportional to the pool —
    /// `--workers 1` on a many-core machine must not keep a huge default
    /// capacity and defeat backpressure.
    pub queue_capacity: Option<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        HarnessOptions {
            workers,
            queue_capacity: None,
        }
    }
}

impl HarnessOptions {
    /// Override the worker count (0 means "default"). An auto-derived queue
    /// capacity follows the new count; an explicit one is preserved.
    pub fn with_workers(mut self, workers: usize) -> Self {
        if workers > 0 {
            self.workers = workers;
        }
        self
    }

    /// Pin the bounded queue capacity explicitly (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// The capacity the bounded queue is created with: the explicit value
    /// when one was set, otherwise `2 × workers`.
    pub fn effective_queue_capacity(&self) -> usize {
        self.queue_capacity.unwrap_or(self.workers.max(1) * 2)
    }
}

/// A job in the bounded queue, stamped with its enqueue instant so the
/// popping worker can report queue wait separately from execution time.
struct QueuedJob {
    index: usize,
    job: Job,
    enqueued: Instant,
}

/// The scheduler's handles into the process-wide metrics registry,
/// registered once per submission and cloned into every worker (handles
/// are `Arc`s over atomics, so recording is lock-free on the hot path).
#[derive(Clone)]
struct SchedulerMetrics {
    queue_wait: lassi_obs::Histogram,
    execute: lassi_obs::Histogram,
    completed_hit: lassi_obs::Counter,
    completed_run: lassi_obs::Counter,
}

impl SchedulerMetrics {
    fn register() -> SchedulerMetrics {
        let registry = lassi_obs::global();
        SchedulerMetrics {
            queue_wait: registry.histogram(
                "lassi_job_queue_wait_seconds",
                "Time a job sat in the bounded queue before a worker popped it.",
                &[],
                lassi_obs::LATENCY_SECONDS,
            ),
            execute: registry.histogram(
                "lassi_job_execute_seconds",
                "Time a worker spent producing a job's record (cache hits included).",
                &[],
                lassi_obs::LATENCY_SECONDS,
            ),
            completed_hit: registry.counter(
                "lassi_jobs_completed_total",
                "Completed scheduler jobs, by cache provenance.",
                &[("result", "cache_hit")],
            ),
            completed_run: registry.counter(
                "lassi_jobs_completed_total",
                "Completed scheduler jobs, by cache provenance.",
                &[("result", "executed")],
            ),
        }
    }

    fn record(&self, queue_seconds: f64, wall_seconds: f64, from_cache: bool) {
        self.queue_wait.observe(queue_seconds);
        self.execute.observe(wall_seconds);
        if from_cache {
            self.completed_hit.inc();
        } else {
            self.completed_run.inc();
        }
    }
}

/// Cooperative cancellation handle shared by the feeder and the workers.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Request cancellation: queued jobs are discarded, in-flight jobs finish.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The experiment service: owns the worker configuration and an optional
/// shared scenario cache.
pub struct Harness {
    options: HarnessOptions,
    cache: Option<Arc<ScenarioCache>>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new(HarnessOptions::default())
    }
}

impl Harness {
    /// A harness with explicit options and no cache.
    pub fn new(options: HarnessOptions) -> Self {
        Harness {
            options,
            cache: None,
        }
    }

    /// Attach a scenario cache (shared by all subsequent submissions).
    pub fn with_cache(mut self, cache: ScenarioCache) -> Self {
        self.cache = Some(Arc::new(cache));
        self
    }

    /// Attach an already-shared scenario cache. This is what a long-lived
    /// service uses: the same `Arc` can feed the harness *and* e.g. a
    /// cache-stats endpoint, without the harness owning the only handle.
    pub fn with_shared_cache(mut self, cache: Arc<ScenarioCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&ScenarioCache> {
        self.cache.as_deref()
    }

    /// Cache counters, defaulting to zeros when no cache is attached.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.cache
            .as_deref()
            .map(ScenarioCache::snapshot)
            .unwrap_or_default()
    }

    /// Block until every cache store so far has reached disk (a no-op
    /// without a cache, or with an in-memory one). Long-lived services call
    /// this on shutdown; batch CLIs call it before another process reads
    /// the cache directory.
    pub fn flush_cache(&self) {
        if let Some(cache) = self.cache.as_deref() {
            cache.flush();
        }
    }

    /// Submit a batch of jobs and stream their outputs as they complete.
    pub fn submit(&self, jobs: Vec<Job>) -> JobStream {
        let total = jobs.len();
        let queue = Arc::new(BoundedQueue::<QueuedJob>::new(
            self.options.effective_queue_capacity(),
        ));
        let cancel = CancelToken::default();
        let (tx, rx) = mpsc::channel::<JobOutput>();
        let metrics = SchedulerMetrics::register();

        // Never spawn more workers than there are jobs: a warm two-scenario
        // submission on a many-core service must not pay dozens of thread
        // spawns for threads that would pop an empty queue and exit.
        let workers = self.options.workers.min(total).max(1);
        let mut handles = Vec::with_capacity(workers + 1);

        // Feeder: pushes into the bounded queue (blocking on backpressure),
        // then closes it so workers drain and exit.
        {
            let queue = Arc::clone(&queue);
            let cancel = cancel.clone();
            handles.push(thread::spawn(move || {
                for (index, job) in jobs.into_iter().enumerate() {
                    let queued = QueuedJob {
                        index,
                        job,
                        enqueued: Instant::now(),
                    };
                    if cancel.is_cancelled() || queue.push(queued).is_err() {
                        break;
                    }
                }
                queue.close();
            }));
        }

        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let cancel = cancel.clone();
            let cache = self.cache.clone();
            let tx = tx.clone();
            let metrics = metrics.clone();
            handles.push(thread::spawn(move || {
                while let Some(QueuedJob {
                    index,
                    job,
                    enqueued,
                }) = queue.pop()
                {
                    if cancel.is_cancelled() {
                        queue.close_and_clear();
                        break;
                    }
                    let started = Instant::now();
                    let queue_seconds = (started - enqueued).as_secs_f64();
                    let (record, from_cache) = match &cache {
                        Some(cache) => {
                            let key = job.cache_key();
                            match cache.lookup(key) {
                                Some(record) => (record, true),
                                None => {
                                    let record = job.run();
                                    cache.store(key, &record);
                                    (record, false)
                                }
                            }
                        }
                        None => (job.run(), false),
                    };
                    let wall_seconds = started.elapsed().as_secs_f64();
                    metrics.record(queue_seconds, wall_seconds, from_cache);
                    let output = JobOutput {
                        index,
                        direction: job.direction,
                        record,
                        wall_seconds,
                        queue_seconds,
                        from_cache,
                    };
                    // The receiver dropping early is a form of cancellation.
                    if tx.send(output).is_err() {
                        queue.close_and_clear();
                        break;
                    }
                }
            }));
        }
        drop(tx);

        JobStream {
            rx,
            cancel,
            queue,
            handles,
            total,
        }
    }

    /// Convenience: run one full direction sweep (the Table VI/VII shape)
    /// through the scheduler and return records in submission order.
    pub fn run_direction_with(
        &self,
        direction: Direction,
        config: &PipelineConfig,
        models: &[ModelSpec],
        apps: &[Application],
    ) -> Vec<TranslationRecord> {
        let jobs = direction_jobs(direction, config, models, apps);
        self.submit(jobs).collect_ordered()
    }
}

/// Build the jobs for one direction in the paper's (model-major) sweep order.
pub fn direction_jobs(
    direction: Direction,
    config: &PipelineConfig,
    models: &[ModelSpec],
    apps: &[Application],
) -> Vec<Job> {
    models
        .iter()
        .flat_map(|model| {
            apps.iter()
                .map(move |app| Job::new(app.clone(), model.clone(), direction, config.clone()))
        })
        .collect()
}

/// A stream of job outputs in completion order. Iterate it for streaming
/// consumption, or use [`JobStream::collect_ordered`] for submission order.
/// Dropping the stream early cancels the remaining queued work.
pub struct JobStream {
    rx: mpsc::Receiver<JobOutput>,
    cancel: CancelToken,
    queue: Arc<BoundedQueue<QueuedJob>>,
    handles: Vec<thread::JoinHandle<()>>,
    total: usize,
}

impl JobStream {
    /// How many jobs were submitted.
    pub fn total(&self) -> usize {
        self.total
    }

    /// A handle that cancels this stream from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cancel: discard queued jobs; in-flight jobs still produce outputs.
    pub fn cancel(&self) {
        self.cancel.cancel();
        self.queue.close_and_clear();
    }

    /// Drain the stream and return the outputs sorted back into submission
    /// order (completion order is nondeterministic under concurrency).
    ///
    /// Panics if a worker panicked (re-raising its payload) or if a
    /// non-cancelled stream came up short — a silently missing record must
    /// not end up rendered as a complete table.
    pub fn collect_outputs(mut self) -> Vec<JobOutput> {
        let mut outputs: Vec<JobOutput> = Vec::with_capacity(self.total);
        while let Ok(output) = self.rx.recv() {
            outputs.push(output);
        }
        // The channel only closes once every worker is gone. If workers died
        // on a panic the feeder may still be blocked pushing into a full
        // queue — close it so the join below cannot deadlock.
        self.queue.close();
        self.join_workers_propagating();
        if !self.cancel.is_cancelled() && outputs.len() != self.total {
            panic!(
                "harness lost {} of {} job outputs without a cancellation",
                self.total - outputs.len(),
                self.total
            );
        }
        outputs.sort_by_key(|o| o.index);
        outputs
    }

    /// Drain the stream into submission-ordered records.
    pub fn collect_ordered(self) -> Vec<TranslationRecord> {
        self.collect_outputs()
            .into_iter()
            .map(|o| o.record)
            .collect()
    }

    /// Join everything, re-raising the first worker panic (if any).
    fn join_workers_propagating(&mut self) {
        let mut panic_payload = None;
        for handle in self.handles.drain(..) {
            if let Err(payload) = handle.join() {
                panic_payload.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Join everything, swallowing panics (the drop path must not panic).
    fn join_workers_quietly(&mut self) {
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Iterator for JobStream {
    type Item = JobOutput;

    fn next(&mut self) -> Option<JobOutput> {
        match self.rx.recv() {
            Ok(output) => Some(output),
            Err(_) => {
                self.queue.close();
                self.join_workers_propagating();
                None
            }
        }
    }
}

impl Drop for JobStream {
    fn drop(&mut self) {
        // An abandoned stream must not leave detached workers grinding
        // through a large grid.
        self.cancel.cancel();
        self.queue.close_and_clear();
        self.join_workers_quietly();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_core::run_direction_with;
    use lassi_hecbench::application;
    use lassi_llm::gpt4;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            timing_runs: 1,
            ..PipelineConfig::default()
        }
    }

    fn small_apps() -> Vec<Application> {
        vec![
            application("layout").unwrap(),
            application("entropy").unwrap(),
        ]
    }

    #[test]
    fn harness_sweep_matches_blocking_sweep() {
        let config = small_config();
        let models = vec![gpt4()];
        let apps = small_apps();
        let harness = Harness::new(HarnessOptions::default().with_workers(2));
        let concurrent = harness.run_direction_with(Direction::CudaToOmp, &config, &models, &apps);
        let blocking = run_direction_with(Direction::CudaToOmp, &config, &models, &apps);
        assert_eq!(concurrent, blocking);
    }

    #[test]
    fn outputs_report_timing_and_cache_provenance() {
        let config = small_config();
        let harness = Harness::new(HarnessOptions::default().with_workers(2))
            .with_cache(ScenarioCache::in_memory());
        let jobs = direction_jobs(Direction::CudaToOmp, &config, &[gpt4()], &small_apps());

        let cold: Vec<JobOutput> = harness.submit(jobs.clone()).collect_outputs();
        assert_eq!(cold.len(), jobs.len());
        assert!(cold.iter().all(|o| !o.from_cache));
        assert!(cold.iter().all(|o| o.wall_seconds >= 0.0));
        assert!(cold.iter().all(|o| o.queue_seconds >= 0.0));

        let warm: Vec<JobOutput> = harness.submit(jobs.clone()).collect_outputs();
        assert!(
            warm.iter().all(|o| o.from_cache),
            "warm pass must be all hits"
        );
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.record, b.record, "cached records are exact");
        }
        let snap = harness.cache_snapshot();
        assert_eq!(snap.hits as usize, jobs.len());
        assert_eq!(snap.misses as usize, jobs.len());
    }

    #[test]
    fn cancellation_discards_queued_work() {
        let config = small_config();
        // 16 jobs, 1 worker, tiny queue: cancelling after the first output
        // must prevent most of the remaining jobs from running.
        let jobs: Vec<Job> = (0..16)
            .map(|_| {
                Job::new(
                    application("layout").unwrap(),
                    gpt4(),
                    Direction::CudaToOmp,
                    config.clone(),
                )
            })
            .collect();
        let harness = Harness::new(HarnessOptions {
            workers: 1,
            queue_capacity: Some(2),
        });
        let total = jobs.len();
        let mut stream = harness.submit(jobs);
        let first = stream.next().expect("at least one output");
        assert_eq!(first.record.application, "layout");
        stream.cancel();
        let rest: Vec<JobOutput> = stream.collect();
        assert!(
            1 + rest.len() < total,
            "cancel must drop queued jobs (got {} of {total})",
            1 + rest.len()
        );
    }

    #[test]
    fn streaming_iteration_sees_every_output() {
        let config = small_config();
        let harness = Harness::new(HarnessOptions::default().with_workers(2));
        let jobs = direction_jobs(Direction::OmpToCuda, &config, &[gpt4()], &small_apps());
        let total = jobs.len();
        let mut seen = Vec::new();
        for output in harness.submit(jobs) {
            seen.push(output.index);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn worker_override_recomputes_queue_capacity() {
        // `--workers 1` on a many-core machine must shrink the queue with
        // the pool; the old `max(existing, workers * 2)` kept the huge
        // default capacity and defeated backpressure.
        let opts = HarnessOptions::default().with_workers(1);
        assert_eq!(opts.effective_queue_capacity(), 2);
        let opts = HarnessOptions::default().with_workers(3);
        assert_eq!(opts.effective_queue_capacity(), 6);
        // An explicit capacity survives a later worker override, and a
        // zero worker override leaves the default worker count alone.
        let opts = HarnessOptions::default()
            .with_queue_capacity(64)
            .with_workers(1);
        assert_eq!(opts.effective_queue_capacity(), 64);
        let default_workers = HarnessOptions::default().workers;
        assert_eq!(
            HarnessOptions::default().with_workers(0).workers,
            default_workers
        );
    }

    #[test]
    fn job_seed_matches_config_derivation() {
        let config = small_config();
        let job = Job::new(
            application("layout").unwrap(),
            gpt4(),
            Direction::OmpToCuda,
            config.clone(),
        );
        assert_eq!(
            job.scenario_seed(),
            config.model_scenario_seed("GPT-4", "layout", Direction::OmpToCuda)
        );
    }
}
