//! # lassi-harness
//!
//! The concurrent experiment service for the LASSI reproduction. Where
//! `lassi-core::experiment` runs one blocking sweep shape (the paper's
//! 2×40 grid), this crate turns scenario execution into a *service* with
//! three pillars:
//!
//! * [`scheduler`] — a [`Job`](scheduler::Job) per scenario, fed through a
//!   bounded [`queue`] into a worker pool that streams
//!   [`JobOutput`](scheduler::JobOutput)s back as they complete, with
//!   cooperative cancellation and per-job wall-clock timing,
//! * [`cache`] — a content-addressed scenario cache (stable FNV-1a over
//!   application sources, model fingerprint, direction, derived seed and
//!   config) whose disk backing makes repeated and overlapping sweeps skip
//!   already-computed scenarios — cached records are exact because the
//!   pipeline is deterministically seeded,
//! * [`store`] + [`json`] + [`codec`] — a dependency-free JSON artifact
//!   store (`artifacts/run-<id>/` with a manifest, record sets and
//!   summaries) that re-renders tables byte-identically without re-running.
//!
//! [`grid`] expands config-grid sweeps (e.g. `max_self_corrections ×
//! timing_runs × model subset`) into jobs — the `sweep` binary in
//! `lassi-bench` is a thin CLI over it. [`runstate`] adds the run
//! lifecycle state machine (`queued → running → done | failed |
//! cancelled`, persisted as `state.json` beside the artifact) that powers
//! asynchronous sweep submission in `lassi-server`, and [`lease`] the
//! time-bounded lease table (`granted → extended → completed | expired →
//! reclaimed`, persisted as `leases.json`) behind the remote worker fleet.

pub mod cache;
pub mod codec;
pub mod grid;
pub mod json;
pub mod lease;
pub mod queue;
pub mod runstate;
pub mod scheduler;
pub mod store;
pub mod trace;

pub use cache::{
    fnv1a64, scenario_key, CacheSnapshot, ScenarioCache, ScenarioKey, WriterSnapshot, SHARD_COUNT,
};
pub use grid::{GridCell, SweepGrid};
pub use json::Json;
pub use lease::{
    FleetStats, IllegalLeaseTransition, JobWrite, Lease, LeaseError, LeaseState, LeaseTable,
    LEASE_FILE,
};
pub use queue::BoundedQueue;
pub use runstate::{IllegalTransition, RunState, RunStatus, STATE_FILE};
pub use scheduler::{
    direction_jobs, CancelToken, Harness, HarnessOptions, Job, JobOutput, JobStream,
};
pub use store::{
    detect_git_commit, is_slug, ArtifactError, ArtifactStore, RunArtifact, RunManifest, RunWriter,
    ScannedRun, DIAGNOSTICS_FILE, SCHEMA_VERSION,
};
pub use trace::{
    diag_event, event_from_json, event_to_json, job_span, parse_trace, read_trace, write_trace,
    TRACE_FILE,
};
