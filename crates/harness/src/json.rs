//! A dependency-free JSON value model, writer and parser.
//!
//! The repository's dependency policy (README, "Dependency policy") rules
//! out serde, so the artifact store hand-rolls the small JSON subset it
//! needs. Design points:
//!
//! * objects preserve insertion order (`Vec<(String, Json)>`), so a value
//!   serialized twice produces byte-identical text,
//! * integers are kept distinct from floats (`i128` covers every `u64`/`i64`
//!   the records use, with no 2^53 precision cliff for seeds),
//! * floats are written with Rust's shortest round-trip `Display` (plus a
//!   forced `.0` so they re-parse as floats), which guarantees
//!   `parse(write(x)) == x` bit-for-bit for every finite `f64`,
//! * non-finite floats serialize as `null` (JSON has no NaN/∞ literal) —
//!   a degenerate metric value (say, a ratio over a zero runtime) must
//!   never abort a whole run mid-write. Decoders map `null` back to
//!   `f64::NAN` where a float is required (see `codec::f64_field`).

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent).
    Int(i128),
    /// A floating-point literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved and significant for output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An `Option<f64>` as a float or `null`.
    pub fn opt_float(v: Option<f64>) -> Json {
        v.map(Json::Float).unwrap_or(Json::Null)
    }

    /// An `Option<String>`-ish as a string or `null`.
    pub fn opt_str(v: Option<&str>) -> Json {
        v.map(|s| Json::Str(s.to_string())).unwrap_or(Json::Null)
    }

    /// A `u64` (seeds, counters) as an integer.
    pub fn uint(v: u64) -> Json {
        Json::Int(v as i128)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i128`, if it is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a `u32`, if it is a non-negative integer that fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_int().and_then(|i| u32::try_from(i).ok())
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|i| usize::try_from(i).ok())
    }

    /// The value as an `f64`: floats directly, integers coerced.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the artifact format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let newline = |out: &mut String, depth: usize| {
            if let Some(width) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', width * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if !f.is_finite() {
                    // JSON cannot represent NaN/±∞; `null` keeps the
                    // document valid instead of panicking mid-write.
                    out.push_str("null");
                    return;
                }
                let text = f.to_string();
                out.push_str(&text);
                // `1f64` renders as "1"; force a fraction so the value
                // re-parses as a float, keeping round-trips type-faithful.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline(out, depth);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after JSON value"));
    }
    Ok(value)
}

/// Recursion cap: artifacts are a few levels deep; anything near this is
/// malformed input, and bailing out beats a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting depth limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected byte {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain UTF-8 in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let first = self.hex4()?;
                if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                        return char::from_u32(combined)
                            .ok_or_else(|| self.error("invalid surrogate pair"));
                    }
                    return Err(self.error("lone high surrogate"));
                }
                if (0xDC00..0xE000).contains(&first) {
                    return Err(self.error("lone low surrogate"));
                }
                char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))?
            }
            c => return Err(self.error(format!("invalid escape `\\{}`", c as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number `{text}`")))?;
        if !f.is_finite() {
            return Err(self.error(format!("number `{text}` overflows f64")));
        }
        Ok(Json::Float(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) {
        assert_eq!(parse(&value.to_compact()).unwrap(), *value);
        assert_eq!(parse(&value.to_pretty()).unwrap(), *value);
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(0.1),
            Json::Float(-1.5e-300),
            Json::Float(3.0),
            Json::Str(String::new()),
            Json::Str("plain".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn u64_seeds_survive_without_precision_loss() {
        let seed = u64::MAX - 1;
        let v = Json::uint(seed);
        let back = parse(&v.to_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for f in [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0] {
            let text = Json::Float(f).to_compact();
            match parse(&text).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Float(f).to_compact(), "null");
            assert_eq!(parse(&Json::Float(f).to_compact()).unwrap(), Json::Null);
        }
        // Inside containers too — the document must stay valid JSON.
        let v = Json::Object(vec![
            ("ok".into(), Json::Float(1.5)),
            ("bad".into(), Json::Float(f64::NAN)),
            ("inf".into(), Json::Array(vec![Json::Float(f64::INFINITY)])),
        ]);
        assert_eq!(v.to_compact(), r#"{"ok":1.5,"bad":null,"inf":[null]}"#);
        assert!(parse(&v.to_pretty()).is_ok());
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(Json::Float(3.0).to_compact(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(parse("3").unwrap(), Json::Int(3));
    }

    #[test]
    fn string_escaping_round_trips() {
        for s in [
            "quote \" backslash \\ slash /",
            "newline\ntab\tcr\rbell\u{8}ff\u{c}",
            "control \u{1} \u{1f}",
            "unicode: caffè 中文 🚀",
            "",
        ] {
            round_trip(&Json::Str(s.to_string()));
        }
    }

    #[test]
    fn parses_foreign_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude80\/""#).unwrap(),
            Json::Str("Aé🚀/".into())
        );
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let v = Json::Object(vec![
            ("zebra".into(), Json::Array(vec![Json::Int(1), Json::Null])),
            ("alpha".into(), Json::Object(vec![])),
            ("mid dle".into(), Json::Float(2.5)),
        ]);
        round_trip(&v);
        let text = v.to_compact();
        assert!(text.find("zebra").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "[1] tail",
            "nul",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut doc = String::new();
        for _ in 0..(MAX_DEPTH + 10) {
            doc.push('[');
        }
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Json::Object(vec![("k".into(), Json::Array(vec![Json::Int(1)]))]);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"k\": [\n    1\n  ]"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
