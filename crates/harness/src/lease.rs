//! The lease table behind the remote worker fleet.
//!
//! When remote workers drain a run, every batch of scenario jobs they pull
//! travels under a *time-bounded lease*: `POST /v1/work/lease` grants one,
//! heartbeats extend it, and `POST /v1/work/complete` settles it. A worker
//! that dies or stalls simply stops heartbeating — its lease expires, is
//! reclaimed, and the jobs it held go back to the requeue set for another
//! worker. Because the simulator is deterministic, re-executing a requeued
//! job reproduces the identical record, so duplicate completions (a stale
//! worker settling a lease that was already reclaimed) are resolved
//! first-write-wins without ever changing the artifact.
//!
//! ```text
//!             ┌─────────┐ heartbeat ┌──────────┐
//!  grant ───▶ │ granted │ ────────▶ │ extended │──┐
//!             └─────────┘           └──────────┘  │ complete
//!                  │  │ complete         │        ▼
//!                  │  └─────────────┐    │   ┌───────────┐
//!                  │ deadline       │    │   │ completed │
//!                  ▼ passes         ▼    │   └───────────┘
//!             ┌─────────┐      ┌────────┴──┐
//!             │ expired │ ───▶ │ reclaimed │  (jobs requeued)
//!             └─────────┘      └───────────┘
//! ```
//!
//! [`LeaseTable`] is the bookkeeping for one run: the requeue set of
//! unleased job indices, the leases in flight, and the first-write-wins
//! completion bitmap. Like [`crate::runstate::RunStatus`] it persists
//! write-then-rename (`leases.json` in the run directory), so a crash
//! mid-write never leaves a torn file for the recovery scan to trip over.
//! The table is deliberately clock-free: every operation takes `now_ms`
//! from the caller, which keeps the whole machine deterministic under test.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::path::Path;

use crate::json::{self, Json};

/// Name of the persisted lease-table file inside a run directory.
pub const LEASE_FILE: &str = "leases.json";

/// Lifecycle states of one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeaseState {
    /// Granted to a worker, running against its initial deadline.
    Granted,
    /// At least one heartbeat extended the deadline.
    Extended,
    /// The worker returned records for every job under the lease.
    Completed,
    /// The deadline passed without completion (worker died or stalled).
    Expired,
    /// The reclaimer requeued the expired lease's uncompleted jobs.
    Reclaimed,
}

impl LeaseState {
    /// Every state, in lifecycle order.
    pub const ALL: [LeaseState; 5] = [
        LeaseState::Granted,
        LeaseState::Extended,
        LeaseState::Completed,
        LeaseState::Expired,
        LeaseState::Reclaimed,
    ];

    /// The wire/disk spelling (`granted`, `extended`, `completed`,
    /// `expired`, `reclaimed`).
    pub fn slug(self) -> &'static str {
        match self {
            LeaseState::Granted => "granted",
            LeaseState::Extended => "extended",
            LeaseState::Completed => "completed",
            LeaseState::Expired => "expired",
            LeaseState::Reclaimed => "reclaimed",
        }
    }

    /// Parse the wire/disk spelling.
    pub fn from_slug(s: &str) -> Option<LeaseState> {
        LeaseState::ALL.into_iter().find(|state| state.slug() == s)
    }

    /// A lease still holding its jobs: granted or extended.
    pub fn is_active(self) -> bool {
        matches!(self, LeaseState::Granted | LeaseState::Extended)
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, LeaseState::Completed | LeaseState::Reclaimed)
    }

    /// Is `self → next` a legal lease transition?
    ///
    /// A `granted` lease may be heartbeat-extended, completed, or expire;
    /// an `extended` one may complete or expire (further heartbeats only
    /// move the deadline, not the state); an `expired` lease is always
    /// reclaimed — requeueing its jobs is the only way out.
    pub fn can_transition_to(self, next: LeaseState) -> bool {
        matches!(
            (self, next),
            (
                LeaseState::Granted,
                LeaseState::Extended | LeaseState::Completed | LeaseState::Expired
            ) | (
                LeaseState::Extended,
                LeaseState::Completed | LeaseState::Expired
            ) | (LeaseState::Expired, LeaseState::Reclaimed)
        )
    }
}

impl fmt::Display for LeaseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A rejected lease transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalLeaseTransition {
    /// The state the lease was in.
    pub from: LeaseState,
    /// The state the caller asked for.
    pub to: LeaseState,
}

impl fmt::Display for IllegalLeaseTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal lease transition {} → {}", self.from, self.to)
    }
}

impl std::error::Error for IllegalLeaseTransition {}

/// Why a lease operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// No lease with that id in the table.
    UnknownLease(String),
    /// The lease exists but is no longer active (already settled or
    /// reclaimed out from under a slow worker).
    NotActive {
        /// The lease in question.
        lease_id: String,
        /// Its current (non-active) state.
        state: LeaseState,
    },
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::UnknownLease(id) => write!(f, "unknown lease `{id}`"),
            LeaseError::NotActive { lease_id, state } => {
                write!(f, "lease `{lease_id}` is {state}, not active")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// First-write-wins verdict for one delivered job record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobWrite {
    /// First record for this job index — keep it.
    Fresh,
    /// The job was already completed (a requeued twin or a stale worker
    /// raced us) — drop the record, the first write stands.
    Duplicate,
}

/// Per-run fleet accounting, surfaced by `GET /v1/runs/{id}` so a
/// degraded-but-succeeding run is visible without reading traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Leases handed to workers (including re-grants of requeued jobs).
    pub leases_granted: u64,
    /// Leases that expired (deadline passed) or were failed for a corrupt
    /// completion, then reclaimed.
    pub leases_expired: u64,
    /// Job indices pushed back into the requeue set by reclaims.
    pub jobs_requeued: u64,
    /// Records dropped because the job already had a first write.
    pub duplicate_completions: u64,
}

impl FleetStats {
    /// Serialize to the `state.json`/`leases.json` sub-object.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("leases_granted".into(), Json::uint(self.leases_granted)),
            ("leases_expired".into(), Json::uint(self.leases_expired)),
            ("jobs_requeued".into(), Json::uint(self.jobs_requeued)),
            (
                "duplicate_completions".into(),
                Json::uint(self.duplicate_completions),
            ),
        ])
    }

    /// Decode the sub-object; missing counters default to zero.
    pub fn from_json(value: &Json) -> FleetStats {
        let count = |name: &str| value.get(name).and_then(Json::as_u64).unwrap_or(0);
        FleetStats {
            leases_granted: count("leases_granted"),
            leases_expired: count("leases_expired"),
            jobs_requeued: count("jobs_requeued"),
            duplicate_completions: count("duplicate_completions"),
        }
    }
}

/// One lease: a batch of job indices held by a worker until a deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// Table-scoped id, e.g. `lease-smoke-0003` (embeds the run id so ids
    /// from different runs never collide at the server).
    pub lease_id: String,
    /// The worker that pulled the batch.
    pub worker: String,
    /// Current lifecycle state.
    pub state: LeaseState,
    /// Submission indices of the jobs under this lease.
    pub jobs: Vec<usize>,
    /// Milliseconds-since-epoch the lease was granted.
    pub granted_unix_ms: u64,
    /// Milliseconds-since-epoch the lease expires unless extended.
    pub deadline_unix_ms: u64,
}

impl Lease {
    fn advance(&mut self, next: LeaseState) -> Result<(), IllegalLeaseTransition> {
        if !self.state.can_transition_to(next) {
            return Err(IllegalLeaseTransition {
                from: self.state,
                to: next,
            });
        }
        self.state = next;
        Ok(())
    }
}

/// The lease bookkeeping for one run: requeue set, in-flight leases, and
/// the first-write-wins completion bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseTable {
    run_id: String,
    total: usize,
    /// Job indices awaiting a lease (initially `0..total`; reclaims push
    /// uncompleted jobs back here).
    pending: VecDeque<usize>,
    /// `completed[i]` — job `i` has its first (and final) record.
    completed: Vec<bool>,
    leases: Vec<Lease>,
    next_lease: u64,
    stats: FleetStats,
}

impl LeaseTable {
    /// A fresh table for a run of `total` jobs, all pending.
    pub fn new(run_id: impl Into<String>, total: usize) -> LeaseTable {
        LeaseTable {
            run_id: run_id.into(),
            total,
            pending: (0..total).collect(),
            completed: vec![false; total],
            leases: Vec::new(),
            next_lease: 0,
            stats: FleetStats::default(),
        }
    }

    /// The run this table belongs to.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Jobs the run expands to.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Jobs waiting in the requeue set.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Jobs with a first write recorded.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|&&c| c).count()
    }

    /// Leases currently holding jobs (granted or extended).
    pub fn active_leases(&self) -> usize {
        self.leases.iter().filter(|l| l.state.is_active()).count()
    }

    /// Every job has its record.
    pub fn is_complete(&self) -> bool {
        self.completed.iter().all(|&c| c)
    }

    /// Fleet accounting so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// All leases, in grant order.
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    fn find(&mut self, lease_id: &str) -> Result<&mut Lease, LeaseError> {
        self.leases
            .iter_mut()
            .find(|l| l.lease_id == lease_id)
            .ok_or_else(|| LeaseError::UnknownLease(lease_id.to_string()))
    }

    /// Grant up to `capacity` pending jobs to `worker` under a lease
    /// expiring at `now_ms + ttl_ms`. Returns `None` when nothing is
    /// pending (all jobs leased out or completed).
    pub fn grant(
        &mut self,
        worker: &str,
        capacity: usize,
        now_ms: u64,
        ttl_ms: u64,
    ) -> Option<&Lease> {
        if self.pending.is_empty() {
            return None;
        }
        let take = capacity.max(1).min(self.pending.len());
        let jobs: Vec<usize> = self.pending.drain(..take).collect();
        let lease_id = format!("lease-{}-{:04}", self.run_id, self.next_lease);
        self.next_lease += 1;
        self.stats.leases_granted += 1;
        self.leases.push(Lease {
            lease_id,
            worker: worker.to_string(),
            state: LeaseState::Granted,
            jobs,
            granted_unix_ms: now_ms,
            deadline_unix_ms: now_ms.saturating_add(ttl_ms),
        });
        self.leases.last()
    }

    /// Extend an active lease's deadline to `now_ms + ttl_ms`. The first
    /// heartbeat moves `granted → extended`; later ones only move the
    /// deadline. Returns the new deadline.
    pub fn heartbeat(
        &mut self,
        lease_id: &str,
        now_ms: u64,
        ttl_ms: u64,
    ) -> Result<u64, LeaseError> {
        let lease = self.find(lease_id)?;
        if !lease.state.is_active() {
            return Err(LeaseError::NotActive {
                lease_id: lease_id.to_string(),
                state: lease.state,
            });
        }
        if lease.state == LeaseState::Granted {
            lease
                .advance(LeaseState::Extended)
                .expect("granted → extended is legal");
        }
        lease.deadline_unix_ms = now_ms.saturating_add(ttl_ms);
        Ok(lease.deadline_unix_ms)
    }

    /// Settle a lease whose worker returned records. An active lease moves
    /// to `completed`; a lease already reclaimed (the worker was presumed
    /// dead, its jobs requeued) settles *late* — its records may still be
    /// delivered first-write-wins via [`LeaseTable::record_job`]. Returns
    /// the lease's job indices and whether it was still active.
    pub fn settle(&mut self, lease_id: &str) -> Result<(Vec<usize>, bool), LeaseError> {
        let lease = self.find(lease_id)?;
        let jobs = lease.jobs.clone();
        if lease.state.is_active() {
            lease
                .advance(LeaseState::Completed)
                .expect("active → completed is legal");
            Ok((jobs, true))
        } else {
            Ok((jobs, false))
        }
    }

    /// Record one job's completion, first-write-wins. A `Fresh` write marks
    /// the job done (and pulls it out of the requeue set if a reclaim had
    /// put it back); a `Duplicate` is counted and must be dropped.
    pub fn record_job(&mut self, index: usize) -> JobWrite {
        if index >= self.total || self.completed[index] {
            self.stats.duplicate_completions += 1;
            return JobWrite::Duplicate;
        }
        self.completed[index] = true;
        self.pending.retain(|&j| j != index);
        JobWrite::Fresh
    }

    /// Expire and reclaim every active lease whose deadline has passed,
    /// requeueing its uncompleted jobs. Returns the requeued indices.
    pub fn reclaim_expired(&mut self, now_ms: u64) -> Vec<usize> {
        let expired: Vec<String> = self
            .leases
            .iter()
            .filter(|l| l.state.is_active() && l.deadline_unix_ms <= now_ms)
            .map(|l| l.lease_id.clone())
            .collect();
        let mut requeued = Vec::new();
        for id in expired {
            requeued.extend(self.reclaim(&id, LeaseState::Expired));
        }
        requeued
    }

    /// Fail an active lease immediately (corrupt completion): same
    /// `expired → reclaimed` path as a deadline miss, without waiting.
    pub fn fail_lease(&mut self, lease_id: &str) -> Result<Vec<usize>, LeaseError> {
        let lease = self.find(lease_id)?;
        if !lease.state.is_active() {
            return Err(LeaseError::NotActive {
                lease_id: lease_id.to_string(),
                state: lease.state,
            });
        }
        Ok(self.reclaim(lease_id, LeaseState::Expired))
    }

    fn reclaim(&mut self, lease_id: &str, via: LeaseState) -> Vec<usize> {
        let lease = self.find(lease_id).expect("reclaim of a known lease");
        lease.advance(via).expect("active → expired is legal");
        lease
            .advance(LeaseState::Reclaimed)
            .expect("expired → reclaimed is legal");
        let jobs = lease.jobs.clone();
        self.stats.leases_expired += 1;
        let mut requeued = Vec::new();
        for job in jobs {
            if !self.completed[job] && !self.pending.contains(&job) {
                self.pending.push_back(job);
                requeued.push(job);
            }
        }
        self.stats.jobs_requeued += requeued.len() as u64;
        requeued
    }

    /// Serialize to the `leases.json` schema.
    pub fn to_json(&self) -> Json {
        let indices = |v: &[usize]| Json::Array(v.iter().map(|&i| Json::uint(i as u64)).collect());
        let leases = self
            .leases
            .iter()
            .map(|l| {
                Json::Object(vec![
                    ("lease_id".into(), Json::Str(l.lease_id.clone())),
                    ("worker".into(), Json::Str(l.worker.clone())),
                    ("state".into(), Json::Str(l.state.slug().into())),
                    ("jobs".into(), indices(&l.jobs)),
                    ("granted_unix_ms".into(), Json::uint(l.granted_unix_ms)),
                    ("deadline_unix_ms".into(), Json::uint(l.deadline_unix_ms)),
                ])
            })
            .collect();
        let completed: Vec<usize> = (0..self.total).filter(|&i| self.completed[i]).collect();
        let pending: Vec<usize> = self.pending.iter().copied().collect();
        Json::Object(vec![
            ("run_id".into(), Json::Str(self.run_id.clone())),
            ("total".into(), Json::uint(self.total as u64)),
            ("pending".into(), indices(&pending)),
            ("completed".into(), indices(&completed)),
            ("leases".into(), Json::Array(leases)),
            ("next_lease".into(), Json::uint(self.next_lease)),
            ("stats".into(), self.stats.to_json()),
        ])
    }

    /// Decode the `leases.json` schema.
    pub fn from_json(value: &Json) -> Result<LeaseTable, String> {
        let indices = |name: &str| -> Result<Vec<usize>, String> {
            value
                .get(name)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("leases.json: missing array `{name}`"))?
                .iter()
                .map(|v| {
                    v.as_usize()
                        .ok_or_else(|| format!("leases.json: non-index in `{name}`"))
                })
                .collect()
        };
        let run_id = value
            .get("run_id")
            .and_then(Json::as_str)
            .ok_or("leases.json: missing string `run_id`")?
            .to_string();
        let total = value
            .get("total")
            .and_then(Json::as_usize)
            .ok_or("leases.json: missing count `total`")?;
        let mut completed = vec![false; total];
        for index in indices("completed")? {
            if index >= total {
                return Err(format!("leases.json: completed index {index} out of range"));
            }
            completed[index] = true;
        }
        let leases = value
            .get("leases")
            .and_then(Json::as_array)
            .ok_or("leases.json: missing array `leases`")?
            .iter()
            .map(|entry| -> Result<Lease, String> {
                let str_field = |name: &str| {
                    entry
                        .get(name)
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("leases.json: lease missing string `{name}`"))
                };
                let ms_field = |name: &str| {
                    entry
                        .get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("leases.json: lease missing stamp `{name}`"))
                };
                let state_slug = str_field("state")?;
                let state = LeaseState::from_slug(state_slug)
                    .ok_or_else(|| format!("leases.json: unknown lease state `{state_slug}`"))?;
                let jobs = entry
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("leases.json: lease missing array `jobs`")?
                    .iter()
                    .map(|v| v.as_usize().ok_or("leases.json: non-index in lease `jobs`"))
                    .collect::<Result<Vec<usize>, _>>()?;
                Ok(Lease {
                    lease_id: str_field("lease_id")?.to_string(),
                    worker: str_field("worker")?.to_string(),
                    state,
                    jobs,
                    granted_unix_ms: ms_field("granted_unix_ms")?,
                    deadline_unix_ms: ms_field("deadline_unix_ms")?,
                })
            })
            .collect::<Result<Vec<Lease>, String>>()?;
        Ok(LeaseTable {
            run_id,
            total,
            pending: indices("pending")?.into_iter().collect(),
            completed,
            leases,
            next_lease: value
                .get("next_lease")
                .and_then(Json::as_u64)
                .ok_or("leases.json: missing count `next_lease`")?,
            stats: value
                .get("stats")
                .map(FleetStats::from_json)
                .unwrap_or_default(),
        })
    }

    /// Persist as `<run_dir>/leases.json`, write-then-rename so a crash
    /// mid-write never leaves a torn file.
    pub fn save(&self, run_dir: &Path) -> io::Result<()> {
        let mut text = self.to_json().to_pretty();
        text.push('\n');
        let tmp = run_dir.join(format!("{LEASE_FILE}.tmp"));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, run_dir.join(LEASE_FILE))
    }

    /// Load `<run_dir>/leases.json`. A missing file is
    /// [`io::ErrorKind::NotFound`]; a torn or malformed one is
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(run_dir: &Path) -> io::Result<LeaseTable> {
        let text = std::fs::read_to_string(run_dir.join(LEASE_FILE))?;
        let value = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        LeaseTable::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Test-facing invariant: no schedule of grants, expiries and
    /// completions may lose or duplicate a job. Every uncompleted job sits
    /// in exactly one place — the requeue set or exactly one active lease —
    /// and completed jobs are never requeued.
    pub fn check_invariant(&self) -> Result<(), String> {
        for job in 0..self.total {
            let in_pending = self.pending.iter().filter(|&&j| j == job).count();
            let in_active = self
                .leases
                .iter()
                .filter(|l| l.state.is_active() && l.jobs.contains(&job))
                .count();
            if self.completed[job] {
                if in_pending != 0 {
                    return Err(format!("completed job {job} still in the requeue set"));
                }
            } else if in_pending + in_active != 1 {
                return Err(format!(
                    "job {job} held {in_pending}× pending + {in_active}× active (want exactly 1)"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for state in LeaseState::ALL {
            assert_eq!(LeaseState::from_slug(state.slug()), Some(state));
        }
        assert_eq!(LeaseState::from_slug("vanished"), None);
    }

    #[test]
    fn transition_matrix_is_exactly_the_lease_lifecycle() {
        use LeaseState::*;
        let legal = [
            (Granted, Extended),
            (Granted, Completed),
            (Granted, Expired),
            (Extended, Completed),
            (Extended, Expired),
            (Expired, Reclaimed),
        ];
        for from in LeaseState::ALL {
            for to in LeaseState::ALL {
                assert_eq!(
                    from.can_transition_to(to),
                    legal.contains(&(from, to)),
                    "{from} → {to}"
                );
            }
        }
        // Terminal states are exactly the ones with no outgoing edges.
        for state in LeaseState::ALL {
            assert_eq!(
                state.is_terminal(),
                LeaseState::ALL
                    .iter()
                    .all(|&to| !state.can_transition_to(to)),
                "{state}"
            );
        }
        // Active states are exactly the ones a heartbeat or completion can
        // reach from.
        for state in LeaseState::ALL {
            assert_eq!(
                state.is_active(),
                matches!(state, Granted | Extended),
                "{state}"
            );
        }
    }

    #[test]
    fn grant_heartbeat_complete_happy_path() {
        let mut table = LeaseTable::new("happy", 6);
        assert_eq!(table.pending_count(), 6);

        let lease = table.grant("w1", 4, 1_000, 500).unwrap();
        let id = lease.lease_id.clone();
        assert_eq!(lease.state, LeaseState::Granted);
        assert_eq!(lease.jobs, vec![0, 1, 2, 3]);
        assert_eq!(lease.deadline_unix_ms, 1_500);
        assert_eq!(table.pending_count(), 2);
        assert_eq!(table.active_leases(), 1);

        // Heartbeat extends the deadline and moves granted → extended once.
        assert_eq!(table.heartbeat(&id, 1_400, 500), Ok(1_900));
        assert_eq!(table.leases()[0].state, LeaseState::Extended);
        assert_eq!(table.heartbeat(&id, 1_800, 500), Ok(2_300));
        assert_eq!(table.leases()[0].state, LeaseState::Extended);

        let (jobs, was_active) = table.settle(&id).unwrap();
        assert!(was_active);
        assert_eq!(jobs, vec![0, 1, 2, 3]);
        for job in jobs {
            assert_eq!(table.record_job(job), JobWrite::Fresh);
        }
        assert_eq!(table.completed_count(), 4);
        assert!(!table.is_complete());

        // The remaining two jobs drain under a second lease.
        let lease2 = table.grant("w2", 8, 2_000, 500).unwrap();
        let id2 = lease2.lease_id.clone();
        assert_eq!(lease2.jobs, vec![4, 5]);
        assert!(
            table.grant("w3", 8, 2_000, 500).is_none(),
            "nothing pending"
        );
        let (jobs2, _) = table.settle(&id2).unwrap();
        jobs2.iter().for_each(|&j| {
            table.record_job(j);
        });
        assert!(table.is_complete());
        assert_eq!(table.stats().leases_granted, 2);
        assert_eq!(table.stats().leases_expired, 0);
        table.check_invariant().unwrap();
    }

    #[test]
    fn expiry_reclaims_and_requeues_only_uncompleted_jobs() {
        let mut table = LeaseTable::new("reclaim", 4);
        let id = table.grant("w1", 4, 0, 100).unwrap().lease_id.clone();
        // A late partial write lands for job 1 before the deadline passes.
        assert_eq!(table.record_job(1), JobWrite::Fresh);

        assert!(table.reclaim_expired(99).is_empty(), "deadline not reached");
        let requeued = table.reclaim_expired(100);
        assert_eq!(requeued, vec![0, 2, 3], "completed job 1 must not requeue");
        assert_eq!(table.leases()[0].state, LeaseState::Reclaimed);
        assert_eq!(table.pending_count(), 3);
        assert_eq!(table.stats().leases_expired, 1);
        assert_eq!(table.stats().jobs_requeued, 3);
        table.check_invariant().unwrap();

        // Heartbeat and repeat-expiry on the reclaimed lease are refused.
        assert_eq!(
            table.heartbeat(&id, 200, 100),
            Err(LeaseError::NotActive {
                lease_id: id.clone(),
                state: LeaseState::Reclaimed,
            })
        );
        assert!(table.reclaim_expired(10_000).is_empty());
        assert_eq!(
            table.heartbeat("lease-reclaim-9999", 0, 1),
            Err(LeaseError::UnknownLease("lease-reclaim-9999".into()))
        );
    }

    #[test]
    fn duplicate_completions_resolve_first_write_wins() {
        let mut table = LeaseTable::new("dup", 3);
        let stale = table.grant("w1", 3, 0, 100).unwrap().lease_id.clone();
        table.reclaim_expired(100);

        // The requeued jobs complete under a second worker's lease.
        let fresh = table.grant("w2", 3, 200, 100).unwrap().lease_id.clone();
        let (jobs, was_active) = table.settle(&fresh).unwrap();
        assert!(was_active);
        for job in jobs {
            assert_eq!(table.record_job(job), JobWrite::Fresh);
        }

        // The presumed-dead worker then settles its reclaimed lease: the
        // lease stays reclaimed and every record is a duplicate.
        let (jobs, was_active) = table.settle(&stale).unwrap();
        assert!(!was_active);
        assert_eq!(table.leases()[0].state, LeaseState::Reclaimed);
        for job in jobs {
            assert_eq!(table.record_job(job), JobWrite::Duplicate);
        }
        assert_eq!(table.stats().duplicate_completions, 3);
        assert!(table.is_complete());
        table.check_invariant().unwrap();
    }

    #[test]
    fn late_write_pulls_a_requeued_job_back_out_of_the_queue() {
        let mut table = LeaseTable::new("late", 2);
        let stale = table.grant("w1", 2, 0, 100).unwrap().lease_id.clone();
        table.reclaim_expired(100);
        assert_eq!(table.pending_count(), 2);

        // The stale worker's completion arrives before anyone re-leases.
        let (jobs, was_active) = table.settle(&stale).unwrap();
        assert!(!was_active);
        for job in jobs {
            assert_eq!(table.record_job(job), JobWrite::Fresh);
        }
        assert_eq!(
            table.pending_count(),
            0,
            "completed jobs left the requeue set"
        );
        assert!(table.is_complete());
        assert!(table.grant("w2", 4, 300, 100).is_none());
        table.check_invariant().unwrap();
    }

    #[test]
    fn fail_lease_requeues_immediately() {
        let mut table = LeaseTable::new("corrupt", 3);
        let id = table.grant("w1", 2, 0, 60_000).unwrap().lease_id.clone();
        let requeued = table.fail_lease(&id).unwrap();
        assert_eq!(requeued, vec![0, 1]);
        assert_eq!(table.leases()[0].state, LeaseState::Reclaimed);
        assert_eq!(table.stats().leases_expired, 1);
        assert!(table.fail_lease(&id).is_err(), "already reclaimed");
        table.check_invariant().unwrap();
    }

    #[test]
    fn table_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("lassi-lease-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut table = LeaseTable::new("persisted", 8);
        table.grant("w1", 3, 1_000, 500);
        table.grant("w2", 3, 1_100, 500);
        let extended = table.leases()[0].lease_id.clone();
        table.heartbeat(&extended, 1_300, 500).unwrap();
        let settled = table.leases()[1].lease_id.clone();
        let (jobs, _) = table.settle(&settled).unwrap();
        jobs.iter().for_each(|&j| {
            table.record_job(j);
        });
        table.reclaim_expired(5_000);

        table.save(&dir).unwrap();
        let loaded = LeaseTable::load(&dir).unwrap();
        assert_eq!(loaded, table);
        loaded.check_invariant().unwrap();

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_or_torn_lease_files_maps_to_io_kinds() {
        let dir = std::env::temp_dir().join(format!("lassi-lease-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        assert_eq!(
            LeaseTable::load(&dir).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        // A torn write: the file stops mid-object, as if the process died
        // before the rename.
        let full = LeaseTable::new("torn", 4).to_json().to_pretty();
        std::fs::write(dir.join(LEASE_FILE), &full[..full.len() / 2]).unwrap();
        assert_eq!(
            LeaseTable::load(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::write(dir.join(LEASE_FILE), r#"{"run_id": "x"}"#).unwrap();
        assert_eq!(
            LeaseTable::load(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
