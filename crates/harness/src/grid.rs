//! Config-grid sweeps: the cartesian product of models × applications ×
//! directions × configuration overrides, flattened into scheduler jobs.
//!
//! This is what opens workloads beyond the paper's fixed 2×40 grid — e.g.
//! sweeping `max_self_corrections × timing_runs` over a model subset to map
//! how the self-correction budget trades off against wall-clock. Overlapping
//! grids share scenario-cache entries, so refining a sweep only pays for the
//! new cells.

use lassi_core::{scenario_outcomes, Direction, PipelineConfig, TranslationRecord};
use lassi_hecbench::Application;
use lassi_llm::ModelSpec;
use lassi_metrics::AggregateStats;
use lassi_obs::TraceEvent;

use crate::cache::CacheSnapshot;
use crate::json::Json;
use crate::runstate::RunStatus;
use crate::scheduler::{Job, JobOutput};
use crate::store::{detect_git_commit, ArtifactError, ArtifactStore, RunManifest};

/// A sweep specification. Every `Vec` dimension must be non-empty.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Base configuration; grid dimensions override its fields per job.
    pub base: PipelineConfig,
    /// Models to sweep.
    pub models: Vec<ModelSpec>,
    /// Applications to sweep.
    pub apps: Vec<Application>,
    /// Directions to sweep.
    pub directions: Vec<Direction>,
    /// `max_self_corrections` values to sweep.
    pub max_self_corrections: Vec<u32>,
    /// `timing_runs` values to sweep.
    pub timing_runs: Vec<u32>,
}

impl SweepGrid {
    /// A 1×1 grid over the base config's own values.
    pub fn single(
        base: PipelineConfig,
        models: Vec<ModelSpec>,
        apps: Vec<Application>,
        directions: Vec<Direction>,
    ) -> SweepGrid {
        SweepGrid {
            max_self_corrections: vec![base.max_self_corrections],
            timing_runs: vec![base.timing_runs],
            base,
            models,
            apps,
            directions,
        }
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        self.models.len()
            * self.apps.len()
            * self.directions.len()
            * self.max_self_corrections.len()
            * self.timing_runs.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distinct (direction, msc, timing_runs) cells, in iteration order —
    /// each cell becomes one artifact record set.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut cells = Vec::new();
        for &direction in &self.directions {
            for &msc in &self.max_self_corrections {
                for &runs in &self.timing_runs {
                    cells.push(GridCell {
                        direction,
                        max_self_corrections: msc,
                        timing_runs: runs,
                    });
                }
            }
        }
        cells
    }

    /// Expand the grid into jobs, cell-major then model-major (the paper's
    /// sweep order within each cell, so tables render identically).
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.len());
        for cell in self.cells() {
            let config = PipelineConfig {
                max_self_corrections: cell.max_self_corrections,
                timing_runs: cell.timing_runs,
                ..self.base.clone()
            };
            for model in &self.models {
                for app in &self.apps {
                    jobs.push(Job::new(
                        app.clone(),
                        model.clone(),
                        cell.direction,
                        config.clone(),
                    ));
                }
            }
        }
        jobs
    }

    /// The run manifest describing a sweep over this grid — the single place
    /// every binary builds its manifest from, so the schema cannot drift
    /// between `table6`, `summary` and `sweep`. `record_sets` is
    /// caller-chosen because set naming differs (plain direction slugs for
    /// the table binaries, full cell slugs for grid sweeps).
    pub fn manifest(
        &self,
        run_id: &str,
        record_sets: Vec<String>,
        scenarios: usize,
        snapshot: CacheSnapshot,
    ) -> RunManifest {
        let mut manifest = RunManifest::new(run_id, self.base.seed);
        manifest.git_commit = detect_git_commit();
        manifest.created_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| Some(d.as_secs()))
            .unwrap_or(None);
        manifest.timing_runs = self.timing_runs.clone();
        manifest.max_self_corrections = self.max_self_corrections.clone();
        manifest.models = self.models.iter().map(|m| m.name.to_string()).collect();
        manifest.applications = self.apps.iter().map(|a| a.name.to_string()).collect();
        manifest.directions = self
            .directions
            .iter()
            .map(|d| d.slug().to_string())
            .collect();
        manifest.record_sets = record_sets;
        manifest.scenarios = scenarios;
        manifest.cache_hits = snapshot.hits;
        manifest.cache_misses = snapshot.misses;
        manifest
    }

    /// Build the run's `diag.v1` diagnostics document: one entry per
    /// scenario that produced findings, in job submission order. Scenarios
    /// with an empty diagnostic history are omitted — a clean first-try
    /// success has nothing to report.
    pub fn diagnostics_document(&self, jobs: &[Job], outputs: &[JobOutput]) -> Json {
        let mut ordered: Vec<&JobOutput> = outputs.iter().collect();
        ordered.sort_by_key(|output| output.index);
        let mut scenarios = Vec::new();
        for output in ordered {
            if output.record.diagnostics.is_empty() {
                continue;
            }
            let job = &jobs[output.index];
            scenarios.push(Json::Object(vec![
                (
                    "application".into(),
                    Json::Str(job.application.name.to_string()),
                ),
                ("model".into(), Json::Str(job.model.name.to_string())),
                (
                    "direction".into(),
                    Json::Str(job.direction.slug().to_string()),
                ),
                ("cell".into(), Json::Str(self.cell_of(job).slug())),
                (
                    "attempts".into(),
                    Json::Array(
                        output
                            .record
                            .diagnostics
                            .iter()
                            .map(crate::codec::attempt_diagnostics_to_json)
                            .collect(),
                    ),
                ),
            ]));
        }
        Json::Object(vec![
            (
                "v".into(),
                Json::Str(lassi_lang::diag::codec::VERSION.into()),
            ),
            ("scenarios".into(), Json::Array(scenarios)),
        ])
    }

    /// Group sweep outputs by grid cell, in [`SweepGrid::cells`] order.
    /// `jobs` must be the job list the outputs were produced from (the
    /// output's `index` field points into it). Within a cell, records are
    /// ordered by job submission index, not worker completion order, so the
    /// artifact bytes are deterministic however the pool schedules jobs.
    pub fn group_by_cell(
        &self,
        jobs: &[Job],
        outputs: &[JobOutput],
    ) -> Vec<(GridCell, Vec<TranslationRecord>)> {
        let mut per_cell: Vec<(GridCell, Vec<TranslationRecord>)> =
            self.cells().into_iter().map(|c| (c, Vec::new())).collect();
        let mut ordered: Vec<&JobOutput> = outputs.iter().collect();
        ordered.sort_by_key(|output| output.index);
        for output in ordered {
            let cell = self.cell_of(&jobs[output.index]);
            let slot = per_cell
                .iter_mut()
                .find(|(c, _)| *c == cell)
                .expect("every job belongs to a grid cell");
            slot.1.push(output.record.clone());
        }
        per_cell
    }

    /// Write one run artifact for a completed sweep over this grid: a
    /// record set and summary per grid cell, the run's `trace.jsonl`, plus
    /// the manifest. This is the single writer the `sweep` CLI and the
    /// HTTP service share, so their artifacts are interchangeable
    /// (`--replay`, `--verify` and `GET /v1/runs/{id}` all read the same
    /// layout).
    ///
    /// `trace` carries the caller's run-lifecycle events (runstate
    /// transitions, drains); one `job` span per output is appended before
    /// writing, so a completed run's trace always holds exactly one span
    /// per scenario regardless of which front end drove the sweep.
    ///
    /// `replace` wipes a previous run under the same (fixed) id; without it
    /// a colliding run id is an `AlreadyExists` error rather than a silent
    /// merge. Returns the per-cell records for later verification.
    #[allow(clippy::too_many_arguments)]
    pub fn write_artifact(
        &self,
        store: &ArtifactStore,
        run_id: &str,
        replace: bool,
        jobs: &[Job],
        outputs: &[JobOutput],
        snapshot: CacheSnapshot,
        trace: &[TraceEvent],
    ) -> Result<Vec<(GridCell, Vec<TranslationRecord>)>, ArtifactError> {
        let per_cell = self.group_by_cell(jobs, outputs);
        let writer = if replace {
            store.create_or_replace_run(run_id)
        } else {
            store.create_run(run_id)
        }?;
        for (cell, records) in &per_cell {
            let slug = cell.slug();
            let stats = AggregateStats::from_outcomes(&scenario_outcomes(records));
            writer.write_records(&slug, records)?;
            writer.write_summary(&slug, &stats)?;
        }
        let record_sets = self.cells().iter().map(GridCell::slug).collect();
        let manifest = self.manifest(run_id, record_sets, outputs.len(), snapshot);
        writer.write_manifest(&manifest)?;
        writer.write_diagnostics(&self.diagnostics_document(jobs, outputs))?;
        // Diagnostics metrics are counted here — at artifact-write time, not
        // in the pipeline — so cache-hit scenarios count exactly like
        // executed ones and the exposition agrees with the artifact. The
        // rounds histogram is registered unconditionally so the family
        // renders even for an all-clean run.
        let registry = lassi_obs::global();
        let rounds = registry.histogram(
            "lassi_self_correction_rounds",
            "Self-correction rounds spent per completed scenario.",
            &[],
            &[0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 40.0],
        );
        let mut events: Vec<TraceEvent> = trace.to_vec();
        let mut ordered: Vec<&JobOutput> = outputs.iter().collect();
        ordered.sort_by_key(|output| output.index);
        // One `job` span per scenario, in submission order with
        // back-to-back end times: each span's duration and queue-wait vs
        // execute split are the worker's real measurements, while the
        // sequential layout keeps the file deterministic under any worker
        // schedule. Each scenario's `diag` events share its span's end
        // instant.
        let mut end_us = 0u64;
        for output in &ordered {
            end_us += ((output.queue_seconds + output.wall_seconds) * 1e6).round() as u64;
            events.push(crate::trace::job_span(end_us, &jobs[output.index], output));
            rounds.observe(output.record.self_corrections as f64);
            for attempt in &output.record.diagnostics {
                for diag in &attempt.diagnostics {
                    events.push(crate::trace::diag_event(
                        end_us,
                        &jobs[output.index],
                        output.index,
                        attempt,
                        diag,
                    ));
                    registry
                        .counter(
                            "lassi_diagnostics_total",
                            "Structured findings recorded in run artifacts, \
                             by severity, code and stage.",
                            &[
                                ("severity", diag.severity.label()),
                                ("code", diag.code_str()),
                                ("stage", &attempt.stage),
                            ],
                        )
                        .inc();
                }
            }
        }
        crate::trace::write_trace(writer.dir(), &events)?;
        // A fully-written artifact is a terminally `done` run; persisting
        // the lifecycle file here keeps CLI-written runs queryable through
        // the same `state.json` contract the async service uses. Callers
        // with richer timing (the sweep executor) overwrite it afterwards.
        RunStatus::done(run_id, outputs.len()).save(writer.dir())?;
        Ok(per_cell)
    }

    /// The cell a job belongs to.
    pub fn cell_of(&self, job: &Job) -> GridCell {
        GridCell {
            direction: job.direction,
            max_self_corrections: job.config.max_self_corrections,
            timing_runs: job.config.timing_runs,
        }
    }
}

/// One configuration cell of a grid sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCell {
    /// Translation direction.
    pub direction: Direction,
    /// Self-correction cap for this cell.
    pub max_self_corrections: u32,
    /// Timed executions averaged per runtime measurement.
    pub timing_runs: u32,
}

impl GridCell {
    /// Filename-safe record-set slug, e.g. `cuda-to-omp-msc40-runs1`.
    pub fn slug(&self) -> String {
        format!(
            "{}-msc{}-runs{}",
            self.direction.slug(),
            self.max_self_corrections,
            self.timing_runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_hecbench::application;
    use lassi_llm::{codestral, gpt4};

    fn grid() -> SweepGrid {
        SweepGrid {
            base: PipelineConfig::default(),
            models: vec![gpt4(), codestral()],
            apps: vec![
                application("layout").unwrap(),
                application("entropy").unwrap(),
            ],
            directions: vec![Direction::CudaToOmp, Direction::OmpToCuda],
            max_self_corrections: vec![10, 40],
            timing_runs: vec![1],
        }
    }

    #[test]
    fn grid_expands_to_the_full_product() {
        let g = grid();
        assert_eq!(g.len(), 2 * 2 * 2 * 2);
        let jobs = g.jobs();
        assert_eq!(jobs.len(), g.len());
        assert_eq!(g.cells().len(), 4);
        // Every job's config reflects its cell overrides.
        for job in &jobs {
            assert!(matches!(job.config.max_self_corrections, 10 | 40));
            assert_eq!(job.config.timing_runs, 1);
        }
        // Cells partition the jobs evenly.
        for cell in g.cells() {
            let n = jobs.iter().filter(|j| g.cell_of(j) == cell).count();
            assert_eq!(n, 4, "{}", cell.slug());
        }
    }

    #[test]
    fn cell_slugs_are_distinct_and_filename_safe() {
        let g = grid();
        let slugs: Vec<String> = g.cells().iter().map(GridCell::slug).collect();
        for (i, a) in slugs.iter().enumerate() {
            assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
            for b in &slugs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn single_grid_matches_base_config() {
        let base = PipelineConfig::default();
        let g = SweepGrid::single(
            base.clone(),
            vec![gpt4()],
            vec![application("layout").unwrap()],
            vec![Direction::CudaToOmp],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(
            g.jobs()[0].config.max_self_corrections,
            base.max_self_corrections
        );
    }
}
