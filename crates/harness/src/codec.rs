//! Conversions between the workspace's record types and [`Json`] values.
//!
//! Every `*_to_json` / `*_from_json` pair is a loss-free round trip: the
//! reconstructed value compares equal to the original (floats bit-for-bit,
//! see `json` module docs). The JSON field order is fixed, so serializing
//! the same value twice yields byte-identical text — that property is what
//! lets `table6 --replay` re-render a saved run byte-identically.

use lassi_core::{AttemptDiagnostics, Direction, ScenarioStatus, TranslationRecord};
use lassi_lang::{Diagnostic, Dialect, Severity};
use lassi_metrics::{AggregateStats, ScenarioOutcome};

use crate::json::Json;
use crate::store::RunManifest;

/// A decode failure: the JSON was well-formed but did not match the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact schema error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, CodecError> {
    value
        .get(key)
        .ok_or_else(|| CodecError(format!("missing field `{key}`")))
}

fn str_field(value: &Json, key: &str) -> Result<String, CodecError> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| CodecError(format!("field `{key}` must be a string")))
}

fn f64_field(value: &Json, key: &str) -> Result<f64, CodecError> {
    let v = field(value, key)?;
    // Non-finite floats serialize as `null` (JSON has no NaN literal); a
    // required float field decodes that back to NaN rather than erroring,
    // so a degenerate record survives a store/load round trip.
    if v.is_null() {
        return Ok(f64::NAN);
    }
    v.as_f64()
        .ok_or_else(|| CodecError(format!("field `{key}` must be a number")))
}

fn u32_field(value: &Json, key: &str) -> Result<u32, CodecError> {
    field(value, key)?
        .as_u32()
        .ok_or_else(|| CodecError(format!("field `{key}` must be a u32")))
}

fn u64_field(value: &Json, key: &str) -> Result<u64, CodecError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| CodecError(format!("field `{key}` must be a u64")))
}

fn usize_field(value: &Json, key: &str) -> Result<usize, CodecError> {
    field(value, key)?
        .as_usize()
        .ok_or_else(|| CodecError(format!("field `{key}` must be a usize")))
}

fn bool_field(value: &Json, key: &str) -> Result<bool, CodecError> {
    field(value, key)?
        .as_bool()
        .ok_or_else(|| CodecError(format!("field `{key}` must be a bool")))
}

fn opt_f64_field(value: &Json, key: &str) -> Result<Option<f64>, CodecError> {
    let v = field(value, key)?;
    if v.is_null() {
        return Ok(None);
    }
    v.as_f64()
        .map(Some)
        .ok_or_else(|| CodecError(format!("field `{key}` must be a number or null")))
}

fn opt_str_field(value: &Json, key: &str) -> Result<Option<String>, CodecError> {
    let v = field(value, key)?;
    if v.is_null() {
        return Ok(None);
    }
    v.as_str()
        .map(|s| Some(s.to_string()))
        .ok_or_else(|| CodecError(format!("field `{key}` must be a string or null")))
}

fn str_array_field(value: &Json, key: &str) -> Result<Vec<String>, CodecError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| CodecError(format!("field `{key}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| CodecError(format!("field `{key}` must contain strings")))
        })
        .collect()
}

fn u32_array_field(value: &Json, key: &str) -> Result<Vec<u32>, CodecError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| CodecError(format!("field `{key}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_u32()
                .ok_or_else(|| CodecError(format!("field `{key}` must contain u32s")))
        })
        .collect()
}

/// Serialize a [`Dialect`].
pub fn dialect_to_str(dialect: Dialect) -> &'static str {
    match dialect {
        Dialect::CudaLite => "cuda-lite",
        Dialect::OmpLite => "omp-lite",
    }
}

/// Deserialize a [`Dialect`].
pub fn dialect_from_str(s: &str) -> Result<Dialect, CodecError> {
    match s {
        "cuda-lite" => Ok(Dialect::CudaLite),
        "omp-lite" => Ok(Dialect::OmpLite),
        other => Err(CodecError(format!("unknown dialect `{other}`"))),
    }
}

/// Serialize a [`ScenarioStatus`].
pub fn status_to_str(status: ScenarioStatus) -> &'static str {
    match status {
        ScenarioStatus::Success => "success",
        ScenarioStatus::BaselineFailed => "baseline-failed",
        ScenarioStatus::CompileGaveUp => "compile-gave-up",
        ScenarioStatus::ExecuteGaveUp => "execute-gave-up",
        ScenarioStatus::OutputMismatch => "output-mismatch",
    }
}

/// Deserialize a [`ScenarioStatus`].
pub fn status_from_str(s: &str) -> Result<ScenarioStatus, CodecError> {
    match s {
        "success" => Ok(ScenarioStatus::Success),
        "baseline-failed" => Ok(ScenarioStatus::BaselineFailed),
        "compile-gave-up" => Ok(ScenarioStatus::CompileGaveUp),
        "execute-gave-up" => Ok(ScenarioStatus::ExecuteGaveUp),
        "output-mismatch" => Ok(ScenarioStatus::OutputMismatch),
        other => Err(CodecError(format!("unknown scenario status `{other}`"))),
    }
}

/// Serialize a [`Diagnostic`] (the `diag.v1` object shape, minus the
/// per-object version tag — the enclosing document carries it once).
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::Object(vec![
        ("severity".into(), Json::Str(d.severity.label().into())),
        ("code".into(), Json::Str(d.code.clone())),
        ("line".into(), Json::Int(d.line as i128)),
        ("column".into(), Json::Int(d.column as i128)),
        ("message".into(), Json::Str(d.message.clone())),
        (
            "notes".into(),
            Json::Array(
                d.notes
                    .iter()
                    .map(|n| {
                        Json::Object(vec![
                            ("line".into(), Json::Int(n.line as i128)),
                            ("message".into(), Json::Str(n.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserialize a [`Diagnostic`].
pub fn diagnostic_from_json(v: &Json) -> Result<Diagnostic, CodecError> {
    let label = str_field(v, "severity")?;
    let severity = Severity::from_label(&label)
        .ok_or_else(|| CodecError(format!("unknown severity `{label}`")))?;
    let notes = field(v, "notes")?
        .as_array()
        .ok_or_else(|| CodecError("field `notes` must be an array".into()))?
        .iter()
        .map(|n| {
            Ok(lassi_lang::Note {
                line: u32_field(n, "line")?,
                message: str_field(n, "message")?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(Diagnostic {
        severity,
        code: str_field(v, "code")?,
        line: u32_field(v, "line")?,
        column: u32_field(v, "column")?,
        message: str_field(v, "message")?,
        notes,
    })
}

/// Serialize one attempt's worth of pipeline diagnostics.
pub fn attempt_diagnostics_to_json(a: &AttemptDiagnostics) -> Json {
    Json::Object(vec![
        ("round".into(), Json::Int(a.round as i128)),
        ("stage".into(), Json::Str(a.stage.clone())),
        (
            "diagnostics".into(),
            Json::Array(a.diagnostics.iter().map(diagnostic_to_json).collect()),
        ),
    ])
}

/// Deserialize one attempt's worth of pipeline diagnostics.
pub fn attempt_diagnostics_from_json(v: &Json) -> Result<AttemptDiagnostics, CodecError> {
    let diagnostics = field(v, "diagnostics")?
        .as_array()
        .ok_or_else(|| CodecError("field `diagnostics` must be an array".into()))?
        .iter()
        .map(diagnostic_from_json)
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(AttemptDiagnostics {
        round: u32_field(v, "round")?,
        stage: str_field(v, "stage")?,
        diagnostics,
    })
}

/// Serialize a [`TranslationRecord`].
pub fn record_to_json(r: &TranslationRecord) -> Json {
    Json::Object(vec![
        ("application".into(), Json::Str(r.application.clone())),
        ("model".into(), Json::Str(r.model.clone())),
        (
            "source_dialect".into(),
            Json::Str(dialect_to_str(r.source_dialect).into()),
        ),
        (
            "target_dialect".into(),
            Json::Str(dialect_to_str(r.target_dialect).into()),
        ),
        ("status".into(), Json::Str(status_to_str(r.status).into())),
        (
            "self_corrections".into(),
            Json::Int(r.self_corrections as i128),
        ),
        (
            "generated_code".into(),
            Json::opt_str(r.generated_code.as_deref()),
        ),
        (
            "generated_runtime".into(),
            Json::opt_float(r.generated_runtime),
        ),
        ("reference_runtime".into(), Json::Float(r.reference_runtime)),
        ("source_runtime".into(), Json::Float(r.source_runtime)),
        ("ratio".into(), Json::opt_float(r.ratio)),
        ("sim_t".into(), Json::opt_float(r.sim_t)),
        ("sim_l".into(), Json::opt_float(r.sim_l)),
        ("prompt_tokens".into(), Json::Int(r.prompt_tokens as i128)),
        (
            "response_tokens".into(),
            Json::Int(r.response_tokens as i128),
        ),
        (
            "diagnostics".into(),
            Json::Array(
                r.diagnostics
                    .iter()
                    .map(attempt_diagnostics_to_json)
                    .collect(),
            ),
        ),
    ])
}

/// Deserialize a [`TranslationRecord`].
pub fn record_from_json(v: &Json) -> Result<TranslationRecord, CodecError> {
    Ok(TranslationRecord {
        application: str_field(v, "application")?,
        model: str_field(v, "model")?,
        source_dialect: dialect_from_str(&str_field(v, "source_dialect")?)?,
        target_dialect: dialect_from_str(&str_field(v, "target_dialect")?)?,
        status: status_from_str(&str_field(v, "status")?)?,
        self_corrections: u32_field(v, "self_corrections")?,
        generated_code: opt_str_field(v, "generated_code")?,
        generated_runtime: opt_f64_field(v, "generated_runtime")?,
        reference_runtime: f64_field(v, "reference_runtime")?,
        source_runtime: f64_field(v, "source_runtime")?,
        ratio: opt_f64_field(v, "ratio")?,
        sim_t: opt_f64_field(v, "sim_t")?,
        sim_l: opt_f64_field(v, "sim_l")?,
        prompt_tokens: usize_field(v, "prompt_tokens")?,
        response_tokens: usize_field(v, "response_tokens")?,
        diagnostics: field(v, "diagnostics")?
            .as_array()
            .ok_or_else(|| CodecError("field `diagnostics` must be an array".into()))?
            .iter()
            .map(attempt_diagnostics_from_json)
            .collect::<Result<Vec<_>, CodecError>>()?,
    })
}

/// Serialize a slice of records as a JSON array.
pub fn records_to_json(records: &[TranslationRecord]) -> Json {
    Json::Array(records.iter().map(record_to_json).collect())
}

/// Deserialize an array of records.
pub fn records_from_json(v: &Json) -> Result<Vec<TranslationRecord>, CodecError> {
    v.as_array()
        .ok_or_else(|| CodecError("record set must be a JSON array".into()))?
        .iter()
        .map(record_from_json)
        .collect()
}

/// Serialize a [`ScenarioOutcome`].
pub fn outcome_to_json(o: &ScenarioOutcome) -> Json {
    Json::Object(vec![
        ("application".into(), Json::Str(o.application.clone())),
        ("model".into(), Json::Str(o.model.clone())),
        ("success".into(), Json::Bool(o.success)),
        ("runtime_seconds".into(), Json::opt_float(o.runtime_seconds)),
        ("ratio".into(), Json::opt_float(o.ratio)),
        ("sim_t".into(), Json::opt_float(o.sim_t)),
        ("sim_l".into(), Json::opt_float(o.sim_l)),
        (
            "self_corrections".into(),
            o.self_corrections
                .map(|c| Json::Int(c as i128))
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Deserialize a [`ScenarioOutcome`].
pub fn outcome_from_json(v: &Json) -> Result<ScenarioOutcome, CodecError> {
    let self_corrections = {
        let c = field(v, "self_corrections")?;
        if c.is_null() {
            None
        } else {
            Some(c.as_u32().ok_or_else(|| {
                CodecError("field `self_corrections` must be a u32 or null".into())
            })?)
        }
    };
    Ok(ScenarioOutcome {
        application: str_field(v, "application")?,
        model: str_field(v, "model")?,
        success: bool_field(v, "success")?,
        runtime_seconds: opt_f64_field(v, "runtime_seconds")?,
        ratio: opt_f64_field(v, "ratio")?,
        sim_t: opt_f64_field(v, "sim_t")?,
        sim_l: opt_f64_field(v, "sim_l")?,
        self_corrections,
    })
}

/// Serialize [`AggregateStats`].
pub fn stats_to_json(s: &AggregateStats) -> Json {
    Json::Object(vec![
        ("total".into(), Json::Int(s.total as i128)),
        ("successes".into(), Json::Int(s.successes as i128)),
        ("success_rate".into(), Json::Float(s.success_rate)),
        (
            "within_ten_percent_rate".into(),
            Json::Float(s.within_ten_percent_rate),
        ),
        (
            "high_similarity_rate".into(),
            Json::Float(s.high_similarity_rate),
        ),
        ("first_try_rate".into(), Json::Float(s.first_try_rate)),
        (
            "mean_self_corrections".into(),
            Json::Float(s.mean_self_corrections),
        ),
    ])
}

/// Deserialize [`AggregateStats`].
pub fn stats_from_json(v: &Json) -> Result<AggregateStats, CodecError> {
    Ok(AggregateStats {
        total: usize_field(v, "total")?,
        successes: usize_field(v, "successes")?,
        success_rate: f64_field(v, "success_rate")?,
        within_ten_percent_rate: f64_field(v, "within_ten_percent_rate")?,
        high_similarity_rate: f64_field(v, "high_similarity_rate")?,
        first_try_rate: f64_field(v, "first_try_rate")?,
        mean_self_corrections: f64_field(v, "mean_self_corrections")?,
    })
}

/// Serialize a [`lassi_core::Table4Row`].
pub fn table4_row_to_json(r: &lassi_core::Table4Row) -> Json {
    Json::Object(vec![
        ("category".into(), Json::Str(r.category.clone())),
        ("application".into(), Json::Str(r.application.clone())),
        ("runtime_args".into(), Json::Str(r.runtime_args.clone())),
        ("cuda_seconds".into(), Json::Float(r.cuda_seconds)),
        ("omp_seconds".into(), Json::Float(r.omp_seconds)),
    ])
}

/// Deserialize a [`lassi_core::Table4Row`].
pub fn table4_row_from_json(v: &Json) -> Result<lassi_core::Table4Row, CodecError> {
    Ok(lassi_core::Table4Row {
        category: str_field(v, "category")?,
        application: str_field(v, "application")?,
        runtime_args: str_field(v, "runtime_args")?,
        cuda_seconds: f64_field(v, "cuda_seconds")?,
        omp_seconds: f64_field(v, "omp_seconds")?,
    })
}

/// Serialize a [`RunManifest`].
pub fn manifest_to_json(m: &RunManifest) -> Json {
    Json::Object(vec![
        ("schema_version".into(), Json::Int(m.schema_version as i128)),
        ("run_id".into(), Json::Str(m.run_id.clone())),
        (
            "package_version".into(),
            Json::Str(m.package_version.clone()),
        ),
        ("git_commit".into(), Json::opt_str(m.git_commit.as_deref())),
        (
            "created_unix".into(),
            m.created_unix.map(Json::uint).unwrap_or(Json::Null),
        ),
        ("seed".into(), Json::uint(m.seed)),
        (
            "timing_runs".into(),
            Json::Array(
                m.timing_runs
                    .iter()
                    .map(|&v| Json::Int(v as i128))
                    .collect(),
            ),
        ),
        (
            "max_self_corrections".into(),
            Json::Array(
                m.max_self_corrections
                    .iter()
                    .map(|&v| Json::Int(v as i128))
                    .collect(),
            ),
        ),
        (
            "models".into(),
            Json::Array(m.models.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        (
            "applications".into(),
            Json::Array(
                m.applications
                    .iter()
                    .map(|s| Json::Str(s.clone()))
                    .collect(),
            ),
        ),
        (
            "directions".into(),
            Json::Array(m.directions.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        (
            "record_sets".into(),
            Json::Array(m.record_sets.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("scenarios".into(), Json::Int(m.scenarios as i128)),
        ("cache_hits".into(), Json::uint(m.cache_hits)),
        ("cache_misses".into(), Json::uint(m.cache_misses)),
    ])
}

/// Deserialize a [`RunManifest`].
pub fn manifest_from_json(v: &Json) -> Result<RunManifest, CodecError> {
    let created_unix =
        {
            let c = field(v, "created_unix")?;
            if c.is_null() {
                None
            } else {
                Some(c.as_u64().ok_or_else(|| {
                    CodecError("field `created_unix` must be a u64 or null".into())
                })?)
            }
        };
    Ok(RunManifest {
        schema_version: u32_field(v, "schema_version")?,
        run_id: str_field(v, "run_id")?,
        package_version: str_field(v, "package_version")?,
        git_commit: opt_str_field(v, "git_commit")?,
        created_unix,
        seed: u64_field(v, "seed")?,
        timing_runs: u32_array_field(v, "timing_runs")?,
        max_self_corrections: u32_array_field(v, "max_self_corrections")?,
        models: str_array_field(v, "models")?,
        applications: str_array_field(v, "applications")?,
        directions: str_array_field(v, "directions")?,
        record_sets: str_array_field(v, "record_sets")?,
        scenarios: usize_field(v, "scenarios")?,
        cache_hits: u64_field(v, "cache_hits")?,
        cache_misses: u64_field(v, "cache_misses")?,
    })
}

/// Serialize both directions' variants of everything a run needs.
pub fn direction_to_str(direction: Direction) -> &'static str {
    direction.slug()
}

/// Deserialize a [`Direction`] slug.
pub fn direction_from_str(s: &str) -> Result<Direction, CodecError> {
    Direction::from_slug(s).ok_or_else(|| CodecError(format!("unknown direction `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_record() -> TranslationRecord {
        TranslationRecord {
            application: "layout".into(),
            model: "GPT-4".into(),
            source_dialect: Dialect::CudaLite,
            target_dialect: Dialect::OmpLite,
            status: ScenarioStatus::Success,
            self_corrections: 3,
            generated_code: Some("int main() {\n  printf(\"x\\n\");\n}".into()),
            generated_runtime: Some(0.1 + 0.2),
            reference_runtime: 1.5,
            source_runtime: 2.25,
            ratio: Some(1.0 / 3.0),
            sim_t: Some(0.61),
            sim_l: None,
            prompt_tokens: 1234,
            response_tokens: 567,
            diagnostics: vec![AttemptDiagnostics {
                round: 0,
                stage: "sema".into(),
                diagnostics: vec![
                    Diagnostic::error(14, "use of undeclared identifier 'd_out'")
                        .with_code("sema/undeclared-ident")
                        .with_column(7)
                        .with_note(2, "'d_out' was freed here"),
                    Diagnostic::warning(3, "runtime call").with_code("sema/omp-runtime-in-cuda"),
                ],
            }],
        }
    }

    #[test]
    fn record_round_trips_through_text() {
        let record = sample_record();
        let text = record_to_json(&record).to_pretty();
        let back = record_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn na_record_round_trips() {
        let mut record = sample_record();
        record.status = ScenarioStatus::CompileGaveUp;
        record.generated_code = None;
        record.generated_runtime = None;
        record.ratio = None;
        record.sim_t = None;
        record.sim_l = None;
        let back =
            record_from_json(&parse(&record_to_json(&record).to_compact()).unwrap()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn non_finite_record_round_trips_without_panicking() {
        let mut record = sample_record();
        record.reference_runtime = f64::NAN;
        record.source_runtime = f64::INFINITY;
        record.ratio = Some(f64::NAN);
        let text = record_to_json(&record).to_pretty();
        let back = record_from_json(&parse(&text).unwrap()).unwrap();
        // Required float fields decode `null` back to NaN…
        assert!(back.reference_runtime.is_nan());
        assert!(back.source_runtime.is_nan(), "∞ collapses to null → NaN");
        // …optional float fields cannot distinguish `None` from a
        // serialized NaN, so they decode to the paper's N/A.
        assert_eq!(back.ratio, None);
        // Writing the decoded record again is stable (no panic, same text).
        assert_eq!(record_to_json(&back).to_pretty(), text);
    }

    #[test]
    fn statuses_and_dialects_cover_every_variant() {
        for status in [
            ScenarioStatus::Success,
            ScenarioStatus::BaselineFailed,
            ScenarioStatus::CompileGaveUp,
            ScenarioStatus::ExecuteGaveUp,
            ScenarioStatus::OutputMismatch,
        ] {
            assert_eq!(status_from_str(status_to_str(status)).unwrap(), status);
        }
        for dialect in [Dialect::CudaLite, Dialect::OmpLite] {
            assert_eq!(dialect_from_str(dialect_to_str(dialect)).unwrap(), dialect);
        }
        for direction in Direction::both() {
            assert_eq!(
                direction_from_str(direction_to_str(direction)).unwrap(),
                direction
            );
        }
        assert!(status_from_str("nope").is_err());
        assert!(dialect_from_str("fortran").is_err());
    }

    #[test]
    fn outcome_and_stats_round_trip() {
        let outcome = ScenarioOutcome {
            application: "entropy".into(),
            model: "Codestral".into(),
            success: true,
            runtime_seconds: Some(0.75),
            ratio: Some(1.25),
            sim_t: Some(0.5),
            sim_l: Some(0.25),
            self_corrections: Some(2),
        };
        let back =
            outcome_from_json(&parse(&outcome_to_json(&outcome).to_pretty()).unwrap()).unwrap();
        assert_eq!(back, outcome);

        let stats = AggregateStats::from_outcomes(&[outcome, ScenarioOutcome::failed("a", "m")]);
        let back = stats_from_json(&parse(&stats_to_json(&stats).to_compact()).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn diagnostics_round_trip_with_notes_and_spans() {
        let attempt = AttemptDiagnostics {
            round: 2,
            stage: "execute".into(),
            diagnostics: vec![
                Diagnostic::error(0, "step limit exceeded").with_code("exec/runtime-error")
            ],
        };
        let back = attempt_diagnostics_from_json(
            &parse(&attempt_diagnostics_to_json(&attempt).to_pretty()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, attempt);
        // An uncoded diagnostic keeps its empty code verbatim — the harness
        // codec is loss-free, unlike the lang codec which normalizes to the
        // placeholder.
        let raw = Diagnostic::note(5, "fyi");
        let back =
            diagnostic_from_json(&parse(&diagnostic_to_json(&raw).to_compact()).unwrap()).unwrap();
        assert_eq!(back, raw);
        assert!(back.code.is_empty());
    }

    #[test]
    fn schema_violations_are_reported_not_panicked() {
        let missing = parse(r#"{"application": "x"}"#).unwrap();
        assert!(record_from_json(&missing).is_err());
        let wrong_type = parse(r#"{"total": "many"}"#).unwrap();
        assert!(stats_from_json(&wrong_type).is_err());
    }
}
