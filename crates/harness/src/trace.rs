//! Serialization of `lassi-obs` trace events through the hand-rolled JSON
//! layer: one compact JSON object per line (`trace.jsonl`) in a run
//! directory, read back for `GET /v1/runs/{id}/trace` and the smoke tests.
//!
//! One line of the versioned `trace.v1` schema:
//!
//! ```text
//! {"v":"trace.v1","kind":"span","name":"job","t_us":120,"dur_us":4500,
//!  "fields":{"application":"layout","queue_wait_us":80,"from_cache":false}}
//! ```
//!
//! `dur_us` is omitted for instantaneous events. Field values are the
//! scalars [`FieldValue`] covers — booleans, 64-bit integers, floats
//! (bit-exact through the codec) and strings — so a write→parse round
//! trip reproduces the events exactly.

use std::io;
use std::path::Path;

use lassi_obs::{FieldValue, TraceEvent, TraceKind, TRACE_SCHEMA};

use crate::codec::CodecError;
use crate::json::{self, Json};
use crate::scheduler::{Job, JobOutput};
use crate::store::ArtifactError;

/// File name of a run's trace inside its `run-<id>/` directory.
pub const TRACE_FILE: &str = "trace.jsonl";

/// Build the canonical `job` span for one completed scheduler output.
///
/// `end_us` is the sink-relative instant the output was observed; the span
/// is back-dated by the job's queue wait plus execution time, so its
/// duration is the job's full push-to-record life and the queue-wait vs
/// execute split is carried in the fields. Every completed run's
/// `trace.jsonl` contains exactly one of these per scenario.
pub fn job_span(end_us: u64, job: &Job, output: &JobOutput) -> TraceEvent {
    let queue_us = (output.queue_seconds * 1e6).round() as u64;
    let execute_us = (output.wall_seconds * 1e6).round() as u64;
    TraceEvent::span(
        "job",
        end_us.saturating_sub(queue_us + execute_us),
        queue_us + execute_us,
    )
    .with("index", output.index)
    .with("application", job.application.name)
    .with("model", job.model.name)
    .with("direction", job.direction.slug())
    .with("queue_wait_us", queue_us)
    .with("execute_us", execute_us)
    .with("from_cache", output.from_cache)
}

/// Build one `diag` event for a single structured finding.
///
/// Emitted at the owning job span's end instant: the finding is observed
/// when the record lands, and anchoring every diagnostic of a scenario to
/// one instant keeps the trace deterministic under any worker schedule.
pub fn diag_event(
    t_us: u64,
    job: &Job,
    index: usize,
    attempt: &lassi_core::AttemptDiagnostics,
    diag: &lassi_lang::Diagnostic,
) -> TraceEvent {
    TraceEvent::event("diag", t_us)
        .with("index", index)
        .with("application", job.application.name)
        .with("model", job.model.name)
        .with("direction", job.direction.slug())
        .with("round", attempt.round as u64)
        .with("stage", attempt.stage.as_str())
        .with("code", diag.code_str())
        .with("severity", diag.severity.label())
        .with("line", diag.line as u64)
}

/// Serialize one trace event to its JSON line value.
pub fn event_to_json(event: &TraceEvent) -> Json {
    let mut object = vec![
        ("v".to_string(), Json::Str(TRACE_SCHEMA.to_string())),
        ("kind".to_string(), Json::Str(event.kind.slug().to_string())),
        ("name".to_string(), Json::Str(event.name.clone())),
        ("t_us".to_string(), Json::uint(event.t_us)),
    ];
    if let Some(dur) = event.dur_us {
        object.push(("dur_us".to_string(), Json::uint(dur)));
    }
    let fields = event
        .fields
        .iter()
        .map(|(key, value)| {
            let json = match value {
                FieldValue::Bool(b) => Json::Bool(*b),
                FieldValue::Int(i) => Json::Int(*i as i128),
                FieldValue::Float(f) => Json::Float(*f),
                FieldValue::Str(s) => Json::Str(s.clone()),
            };
            (key.clone(), json)
        })
        .collect();
    object.push(("fields".to_string(), Json::Object(fields)));
    Json::Object(object)
}

/// Inverse of [`event_to_json`].
pub fn event_from_json(value: &Json) -> Result<TraceEvent, CodecError> {
    let expect = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| CodecError(format!("trace event missing `{key}`")))
    };
    let version = expect("v")?
        .as_str()
        .ok_or_else(|| CodecError("trace event `v` must be a string".into()))?;
    if version != TRACE_SCHEMA {
        return Err(CodecError(format!(
            "unsupported trace schema `{version}` (expected `{TRACE_SCHEMA}`)"
        )));
    }
    let kind_slug = expect("kind")?
        .as_str()
        .ok_or_else(|| CodecError("trace event `kind` must be a string".into()))?;
    let kind = TraceKind::from_slug(kind_slug)
        .ok_or_else(|| CodecError(format!("unknown trace kind `{kind_slug}`")))?;
    let name = expect("name")?
        .as_str()
        .ok_or_else(|| CodecError("trace event `name` must be a string".into()))?
        .to_string();
    let t_us = expect("t_us")?
        .as_u64()
        .ok_or_else(|| CodecError("trace event `t_us` must be a u64".into()))?;
    let dur_us = match value.get("dur_us") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| CodecError("trace event `dur_us` must be a u64".into()))?,
        ),
    };
    let Some(Json::Object(raw_fields)) = value.get("fields") else {
        return Err(CodecError("trace event `fields` must be an object".into()));
    };
    let mut fields = Vec::with_capacity(raw_fields.len());
    for (key, v) in raw_fields {
        let field = match v {
            Json::Bool(b) => FieldValue::Bool(*b),
            Json::Int(i) => FieldValue::Int(
                i64::try_from(*i)
                    .map_err(|_| CodecError(format!("trace field `{key}` out of i64 range")))?,
            ),
            Json::Float(f) => FieldValue::Float(*f),
            Json::Str(s) => FieldValue::Str(s.clone()),
            other => {
                return Err(CodecError(format!(
                    "trace field `{key}` has unsupported type ({other:?})"
                )))
            }
        };
        fields.push((key.clone(), field));
    }
    Ok(TraceEvent {
        kind,
        name,
        t_us,
        dur_us,
        fields,
    })
}

/// Write a run's trace as `trace.jsonl` (one compact object per line) into
/// `dir`. An empty event list still writes the (empty) file, so "the run
/// has a trace" is an invariant of completed runs, not a special case.
pub fn write_trace(dir: &Path, events: &[TraceEvent]) -> io::Result<()> {
    let mut text = String::new();
    for event in events {
        text.push_str(&event_to_json(event).to_compact());
        text.push('\n');
    }
    std::fs::write(dir.join(TRACE_FILE), text)
}

/// Read a `trace.jsonl` back from a run directory.
pub fn read_trace(dir: &Path) -> Result<Vec<TraceEvent>, ArtifactError> {
    parse_trace(&std::fs::read_to_string(dir.join(TRACE_FILE))?)
}

/// Parse the text of a `trace.jsonl` file (blank lines are ignored).
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ArtifactError> {
    let mut events = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(event_from_json(&json::parse(line)?)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn test_dir(label: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "lassi-trace-test-{}-{label}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::event("runstate", 0)
                .with("from", "queued")
                .with("to", "running"),
            TraceEvent::span("job", 120, 4500)
                .with("application", "layout")
                .with("model", "GPT-4")
                .with("direction", "cuda-to-omp")
                .with("index", 0usize)
                .with("queue_wait_us", 80u64)
                .with("execute_us", 4420u64)
                .with("from_cache", false)
                .with("wall_seconds", 0.00442),
            TraceEvent::event("runstate", 5000)
                .with("from", "running")
                .with("to", "done"),
        ]
    }

    #[test]
    fn events_round_trip_through_the_codec() {
        for event in sample_events() {
            let json = event_to_json(&event);
            let reparsed = json::parse(&json.to_compact()).unwrap();
            assert_eq!(event_from_json(&reparsed).unwrap(), event);
        }
    }

    #[test]
    fn trace_file_round_trips() {
        let dir = test_dir("roundtrip");
        let events = sample_events();
        write_trace(&dir, &events).unwrap();
        let loaded = read_trace(&dir).unwrap();
        assert_eq!(loaded, events);
        // The file is genuine JSONL: one parseable object per line.
        let text = std::fs::read_to_string(dir.join(TRACE_FILE)).unwrap();
        assert_eq!(text.lines().count(), events.len());
        for line in text.lines() {
            assert!(json::parse(line).is_ok());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_still_writes_a_file() {
        let dir = test_dir("empty");
        write_trace(&dir, &[]).unwrap();
        assert!(dir.join(TRACE_FILE).is_file());
        assert_eq!(read_trace(&dir).unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_and_shape_errors_are_rejected() {
        let bad_version = r#"{"v":"trace.v0","kind":"event","name":"x","t_us":0,"fields":{}}"#;
        assert!(parse_trace(bad_version).is_err());
        let bad_kind = r#"{"v":"trace.v1","kind":"blob","name":"x","t_us":0,"fields":{}}"#;
        assert!(parse_trace(bad_kind).is_err());
        let missing_fields = r#"{"v":"trace.v1","kind":"event","name":"x","t_us":0}"#;
        assert!(parse_trace(missing_fields).is_err());
        let nested_field =
            r#"{"v":"trace.v1","kind":"event","name":"x","t_us":0,"fields":{"a":[1]}}"#;
        assert!(parse_trace(nested_field).is_err());
        let not_json = "{ nope";
        assert!(parse_trace(not_json).is_err());
    }

    #[test]
    fn float_fields_are_bit_exact() {
        let event = TraceEvent::event("f", 1)
            .with("v", 0.1_f64)
            .with("tiny", 5e-324_f64)
            .with("big", 1.7976931348623157e308_f64);
        let line = event_to_json(&event).to_compact();
        let back = event_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, event);
    }
}
