//! A bounded, blocking MPMC work queue built on `Mutex` + `Condvar`.
//!
//! `push` blocks while the queue is full (backpressure against unbounded
//! sweep submission), `pop` blocks while it is empty, and `close` wakes
//! every waiter so producers and consumers drain deterministically.
//!
//! The locks are the vendored `parking_lot` shim, which does not poison:
//! when one worker panics mid-operation, every other client of a shared
//! queue keeps working instead of cascading `PoisonError` panics through
//! the long-lived service.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. Shared between the feeder and the worker threads via `Arc`.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Block until there is room, then enqueue. Returns `Err(item)` if the
    /// queue was closed before the item could be enqueued.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` once the queue is closed
    /// and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Close the queue: pending `push`es fail, `pop` drains what is left
    /// then returns `None`.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Close and throw away everything still queued (cancellation path).
    pub fn close_and_clear(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        state.items.clear();
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Number of queued items right now (tests / introspection).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_capacity_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1).is_ok())
        };
        // The producer can only finish after this pop makes room.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_and_clear_discards_pending_work() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close_and_clear();
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn close_unblocks_waiting_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
