//! The run lifecycle state machine behind asynchronous sweep submission.
//!
//! A submitted sweep becomes a *run resource* that moves through
//! `queued → running → done | failed | cancelled`. [`RunState`] encodes
//! which transitions are legal; [`RunStatus`] carries the state plus
//! progress (completed/total scenarios, wall-clock) and is persisted as
//! `state.json` inside the run directory (write-then-rename, so a
//! concurrent reader never sees a torn file). Because the file lives with
//! the artifact, lifecycle state survives a process restart: a run found
//! `queued` or `running` on startup provably lost its executor and is
//! marked `failed` by recovery rather than lying about progress forever.
//!
//! ```text
//!             ┌─────────┐      ┌─────────┐      ┌──────┐
//!  submit ──▶ │ queued  │ ───▶ │ running │ ───▶ │ done │
//!             └─────────┘      └─────────┘      └──────┘
//!                  │  │            │  │
//!                  │  └────────────┼──┼──────▶ failed     (drain, crash,
//!                  │               │  │                     artifact error)
//!                  └───────────────┼──┴──────▶ cancelled  (client cancel)
//!                                  └─────────▶ cancelled
//! ```

use std::fmt;
use std::io;
use std::path::Path;

use crate::json::{self, Json};
use crate::lease::FleetStats;

/// Name of the lifecycle file inside a run directory.
pub const STATE_FILE: &str = "state.json";

/// Seconds since the Unix epoch, `None` if the clock is before the epoch.
pub fn unix_now() -> Option<u64> {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .ok()
}

/// Lifecycle states of a run resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunState {
    /// Accepted and waiting for a sweep executor.
    Queued,
    /// A sweep executor is computing scenarios.
    Running,
    /// Every scenario completed and the artifact is on disk.
    Done,
    /// The run ended without a complete artifact (drain, restart, error).
    Failed,
    /// A client cancelled the run.
    Cancelled,
}

impl RunState {
    /// Every state, in lifecycle order.
    pub const ALL: [RunState; 5] = [
        RunState::Queued,
        RunState::Running,
        RunState::Done,
        RunState::Failed,
        RunState::Cancelled,
    ];

    /// The wire/disk spelling (`queued`, `running`, `done`, `failed`,
    /// `cancelled`).
    pub fn slug(self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Failed => "failed",
            RunState::Cancelled => "cancelled",
        }
    }

    /// Parse the wire/disk spelling.
    pub fn from_slug(s: &str) -> Option<RunState> {
        RunState::ALL.into_iter().find(|state| state.slug() == s)
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RunState::Done | RunState::Failed | RunState::Cancelled
        )
    }

    /// Is `self → next` a legal lifecycle transition?
    ///
    /// `queued` may start running or end terminally without ever running
    /// (client cancel, drain); `running` may end in any terminal state;
    /// `done` is only reachable from `running` — a run that never ran can
    /// not have produced an artifact.
    pub fn can_transition_to(self, next: RunState) -> bool {
        matches!(
            (self, next),
            (RunState::Queued, RunState::Running)
                | (RunState::Queued, RunState::Failed | RunState::Cancelled)
                | (
                    RunState::Running,
                    RunState::Done | RunState::Failed | RunState::Cancelled
                )
        )
    }
}

impl fmt::Display for RunState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A rejected lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The state the run was in.
    pub from: RunState,
    /// The state the caller asked for.
    pub to: RunState,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal run transition {} → {}", self.from, self.to)
    }
}

impl std::error::Error for IllegalTransition {}

/// The queryable lifecycle view of one run: state, progress and timing.
///
/// This is what `GET /v1/runs/{id}` serves and what `state.json` persists.
/// `completed`/`total` count scenarios; `wall_seconds` is the final wall
/// clock of a terminal run (live wall for a running run is computed by the
/// service from its own `Instant`, not from this struct).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStatus {
    /// The run id (the `<id>` of `run-<id>/`).
    pub run_id: String,
    /// Current lifecycle state.
    pub state: RunState,
    /// Scenarios completed so far (== `total` for a `done` run).
    pub completed: usize,
    /// Scenarios the sweep expands to.
    pub total: usize,
    /// Unix timestamp of submission.
    pub created_unix: Option<u64>,
    /// Unix timestamp the run left `queued` for `running`.
    pub started_unix: Option<u64>,
    /// Unix timestamp the run reached a terminal state.
    pub finished_unix: Option<u64>,
    /// Final wall-clock seconds spent executing (terminal runs only).
    pub wall_seconds: Option<f64>,
    /// Why the run `failed` or was `cancelled`.
    pub reason: Option<String>,
    /// Lease/requeue accounting when remote workers drained the run
    /// (`None` for the local executor path).
    pub fleet: Option<FleetStats>,
}

impl RunStatus {
    /// A freshly-submitted run: `queued`, nothing completed, created now.
    pub fn queued(run_id: impl Into<String>, total: usize) -> RunStatus {
        RunStatus {
            run_id: run_id.into(),
            state: RunState::Queued,
            completed: 0,
            total,
            created_unix: unix_now(),
            started_unix: None,
            finished_unix: None,
            wall_seconds: None,
            reason: None,
            fleet: None,
        }
    }

    /// A run that completed synchronously (the CLI path, where submission
    /// and execution are one step): `done`, fully completed, stamped now.
    pub fn done(run_id: impl Into<String>, total: usize) -> RunStatus {
        let now = unix_now();
        RunStatus {
            run_id: run_id.into(),
            state: RunState::Done,
            completed: total,
            total,
            created_unix: now,
            started_unix: now,
            finished_unix: now,
            wall_seconds: None,
            reason: None,
            fleet: None,
        }
    }

    /// Advance the state machine, stamping `started_unix`/`finished_unix`
    /// as the run enters `running`/a terminal state. Illegal transitions
    /// (anything out of a terminal state, `queued → done`, self-loops) are
    /// rejected without mutating.
    pub fn advance(&mut self, next: RunState) -> Result<(), IllegalTransition> {
        if !self.state.can_transition_to(next) {
            return Err(IllegalTransition {
                from: self.state,
                to: next,
            });
        }
        self.state = next;
        if next == RunState::Running {
            self.started_unix = unix_now();
        }
        if next.is_terminal() {
            self.finished_unix = unix_now();
        }
        Ok(())
    }

    /// [`RunStatus::advance`] into a terminal state with a reason attached
    /// (why the run failed / who cancelled it).
    pub fn finish(
        &mut self,
        next: RunState,
        reason: impl Into<String>,
    ) -> Result<(), IllegalTransition> {
        self.advance(next)?;
        self.reason = Some(reason.into());
        Ok(())
    }

    /// Serialize to the `state.json` schema.
    pub fn to_json(&self) -> Json {
        let opt_u64 = |v: Option<u64>| v.map(Json::uint).unwrap_or(Json::Null);
        Json::Object(vec![
            ("run_id".into(), Json::Str(self.run_id.clone())),
            ("state".into(), Json::Str(self.state.slug().into())),
            ("completed".into(), Json::uint(self.completed as u64)),
            ("total".into(), Json::uint(self.total as u64)),
            ("created_unix".into(), opt_u64(self.created_unix)),
            ("started_unix".into(), opt_u64(self.started_unix)),
            ("finished_unix".into(), opt_u64(self.finished_unix)),
            (
                "wall_seconds".into(),
                self.wall_seconds.map(Json::Float).unwrap_or(Json::Null),
            ),
            ("reason".into(), Json::opt_str(self.reason.as_deref())),
            (
                "fleet".into(),
                self.fleet
                    .as_ref()
                    .map(FleetStats::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decode the `state.json` schema.
    pub fn from_json(value: &Json) -> Result<RunStatus, String> {
        let str_field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("state.json: missing string `{name}`"))
        };
        let usize_field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("state.json: missing count `{name}`"))
        };
        let opt_u64 = |name: &str| value.get(name).and_then(Json::as_u64);
        let state_slug = str_field("state")?;
        let state = RunState::from_slug(state_slug)
            .ok_or_else(|| format!("state.json: unknown state `{state_slug}`"))?;
        Ok(RunStatus {
            run_id: str_field("run_id")?.to_string(),
            state,
            completed: usize_field("completed")?,
            total: usize_field("total")?,
            created_unix: opt_u64("created_unix"),
            started_unix: opt_u64("started_unix"),
            finished_unix: opt_u64("finished_unix"),
            wall_seconds: value.get("wall_seconds").and_then(Json::as_f64),
            reason: value
                .get("reason")
                .and_then(Json::as_str)
                .map(str::to_string),
            fleet: value
                .get("fleet")
                .filter(|v| !v.is_null())
                .map(FleetStats::from_json),
        })
    }

    /// Persist as `<run_dir>/state.json`, write-then-rename so a concurrent
    /// reader (or a crash mid-write) never observes a torn file.
    pub fn save(&self, run_dir: &Path) -> io::Result<()> {
        let mut text = self.to_json().to_pretty();
        text.push('\n');
        let tmp = run_dir.join(format!("{STATE_FILE}.tmp"));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, run_dir.join(STATE_FILE))
    }

    /// Load `<run_dir>/state.json`. A missing file is
    /// [`io::ErrorKind::NotFound`]; a malformed one is
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(run_dir: &Path) -> io::Result<RunStatus> {
        let text = std::fs::read_to_string(run_dir.join(STATE_FILE))?;
        let value = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        RunStatus::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for state in RunState::ALL {
            assert_eq!(RunState::from_slug(state.slug()), Some(state));
        }
        assert_eq!(RunState::from_slug("exploded"), None);
    }

    #[test]
    fn transition_matrix_is_exactly_the_lifecycle() {
        use RunState::*;
        let legal = [
            (Queued, Running),
            (Queued, Failed),
            (Queued, Cancelled),
            (Running, Done),
            (Running, Failed),
            (Running, Cancelled),
        ];
        for from in RunState::ALL {
            for to in RunState::ALL {
                assert_eq!(
                    from.can_transition_to(to),
                    legal.contains(&(from, to)),
                    "{from} → {to}"
                );
            }
        }
        // Terminal states are exactly the ones with no outgoing edges.
        for state in RunState::ALL {
            assert_eq!(
                state.is_terminal(),
                RunState::ALL.iter().all(|&to| !state.can_transition_to(to)),
                "{state}"
            );
        }
    }

    #[test]
    fn advance_stamps_timestamps_and_rejects_illegal_moves() {
        let mut status = RunStatus::queued("r1", 8);
        assert_eq!(status.state, RunState::Queued);
        assert!(status.created_unix.is_some());
        assert!(status.started_unix.is_none());

        // queued → done skips running and must be rejected, unmutated.
        let err = status.advance(RunState::Done).unwrap_err();
        assert_eq!(err.from, RunState::Queued);
        assert_eq!(err.to, RunState::Done);
        assert_eq!(status.state, RunState::Queued);

        status.advance(RunState::Running).unwrap();
        assert!(status.started_unix.is_some());
        assert!(status.finished_unix.is_none());

        status.advance(RunState::Done).unwrap();
        assert!(status.finished_unix.is_some());

        // Terminal states accept nothing, and a refused `finish` must not
        // attach its reason.
        for to in RunState::ALL {
            assert!(status.advance(to).is_err(), "done → {to} must fail");
            assert!(status.finish(to, "unused").is_err());
        }
        assert_eq!(status.reason, None);
    }

    #[test]
    fn finish_attaches_a_reason() {
        let mut status = RunStatus::queued("r2", 4);
        status
            .finish(RunState::Failed, "server drained before the run started")
            .unwrap();
        assert_eq!(status.state, RunState::Failed);
        assert_eq!(
            status.reason.as_deref(),
            Some("server drained before the run started")
        );
        assert!(status.finished_unix.is_some());
    }

    #[test]
    fn status_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("lassi-runstate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut status = RunStatus::queued("persisted", 80);
        status.save(&dir).unwrap();
        assert_eq!(RunStatus::load(&dir).unwrap(), status);

        status.advance(RunState::Running).unwrap();
        status.completed = 17;
        status.wall_seconds = Some(3.25);
        status.fleet = Some(FleetStats {
            leases_granted: 5,
            leases_expired: 1,
            jobs_requeued: 4,
            duplicate_completions: 2,
        });
        status
            .finish(RunState::Cancelled, "cancelled by client")
            .unwrap();
        status.save(&dir).unwrap();
        let loaded = RunStatus::load(&dir).unwrap();
        assert_eq!(loaded, status);
        assert_eq!(loaded.state, RunState::Cancelled);
        assert_eq!(loaded.completed, 17);
        assert_eq!(loaded.wall_seconds, Some(3.25));
        assert_eq!(loaded.fleet.unwrap().jobs_requeued, 4);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_or_garbage_state_maps_to_io_kinds() {
        let dir = std::env::temp_dir().join(format!("lassi-runstate-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        assert_eq!(
            RunStatus::load(&dir).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        std::fs::write(dir.join(STATE_FILE), "not json").unwrap();
        assert_eq!(
            RunStatus::load(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::write(dir.join(STATE_FILE), r#"{"state": "sideways"}"#).unwrap();
        assert_eq!(
            RunStatus::load(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
