//! Content-addressed scenario cache.
//!
//! A scenario's [`TranslationRecord`] is fully determined by the application
//! sources, the model fingerprint, the direction, the derived per-scenario
//! seed and the pipeline configuration — the pipeline is deterministic, so a
//! cached record is *exact*, not approximate. The cache key hashes all of
//! those with FNV-1a (hand-rolled: `DefaultHasher` is explicitly not stable
//! across Rust releases, and disk entries must outlive a toolchain bump —
//! a changed hash only costs a miss, a *reused* wrong hash would corrupt).
//!
//! Two backings share one interface: a process-local in-memory map, and an
//! optional on-disk layer (one JSON file per scenario) that lets repeated
//! sweep *invocations* skip already-computed scenarios. Hit/miss counters
//! prove the speedup (`sweep --smoke` asserts a warm rerun is 100% hits).
//!
//! ## Scaling under concurrency
//!
//! The in-memory map is sharded [`SHARD_COUNT`] ways by key hash, each shard
//! behind its own (non-poisoning) `parking_lot::Mutex`, so concurrent
//! clients of a long-lived service do not serialize on one lock. Counters
//! are kept per shard and summed in [`ScenarioCache::snapshot`], so the
//! `hits + misses == lookups` invariant survives sharding.
//!
//! Disk persistence is *batched*: [`ScenarioCache::store`] enqueues the
//! record onto a bounded channel drained by one writer thread, so the
//! request path never does a synchronous file write. [`ScenarioCache::flush`]
//! blocks until everything enqueued so far is on disk; dropping the cache
//! flushes implicitly (the writer drains its queue and is joined). Crash
//! consistency is trivial: an entry that never reached disk is just a
//! future miss, and the write-then-rename protocol means a reader never
//! sees a torn file.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use parking_lot::Mutex;

use lassi_core::TranslationRecord;

use crate::codec::{record_from_json, record_to_json};
use crate::json;
use crate::scheduler::Job;

/// Number of independent in-memory shards (a power of two so the shard
/// index is a mask over the key hash).
pub const SHARD_COUNT: usize = 16;

/// Capacity of the disk-writer channel: enough to absorb a burst of stores
/// without blocking the workers, small enough that a slow disk applies
/// backpressure instead of ballooning memory.
const WRITER_QUEUE_CAPACITY: usize = 256;

/// 64-bit FNV-1a over arbitrary bytes: small, stable, good enough dispersion
/// for a few thousand scenario keys.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content-addressed identity of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioKey(pub u64);

impl ScenarioKey {
    /// Hex form used as the on-disk file stem.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Which shard this key lives in: the FNV hash folded down and masked.
    /// Folding the high half in keeps the shard choice sensitive to every
    /// input byte, not just the tail the final multiplies mixed last.
    fn shard_index(self) -> usize {
        ((self.0 ^ (self.0 >> 32)) as usize) & (SHARD_COUNT - 1)
    }
}

/// Derive the cache key for a job from everything that determines its record.
///
/// The leading version tag covers the *pipeline semantics* too: bump it when
/// a code change alters what a record would contain for identical inputs
/// (v2: the Sim-T tokenizer stopped gluing `.` into identifiers, shifting
/// similarity scores; v3: executions moved to the bytecode VM and the key
/// gained the engine token; v4: repair prompts render structured coded
/// diagnostics and records carry per-attempt diagnostic history), so stale
/// disk entries miss instead of resurfacing scores the current code would
/// never produce.
pub fn scenario_key(job: &Job) -> ScenarioKey {
    let config = &job.config;
    let canonical = format!(
        "v4;engine={};app={};cuda={:016x};omp={:016x};model={};dir={};seed={};msc={};runs={};\
         step={};hostop={:016x};startup={:016x}",
        config.engine.label(),
        job.application.name,
        fnv1a64(job.application.cuda_source.as_bytes()),
        fnv1a64(job.application.omp_source.as_bytes()),
        job.model.fingerprint(),
        job.direction.slug(),
        job.scenario_seed(),
        config.max_self_corrections,
        config.timing_runs,
        config.run_config.step_limit,
        config.run_config.host_op_seconds.to_bits(),
        config.run_config.startup_seconds.to_bits(),
    );
    ScenarioKey(fnv1a64(canonical.as_bytes()))
}

/// Hit/miss/store counters, cheap enough to share across worker threads.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

/// A point-in-time copy of the counters (for per-pass deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a pipeline run.
    pub misses: u64,
    /// Records written into the cache.
    pub stores: u64,
}

impl CacheSnapshot {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stores: self.stores - earlier.stores,
        }
    }
}

/// One in-memory shard: its slice of the key space plus its own counters.
/// Records are held behind `Arc`s so the lock is only ever held across a
/// map operation and a refcount bump — deep clones (the records carry the
/// scenario's source strings) happen outside the lock.
#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<u64, Arc<TranslationRecord>>>,
    stats: CacheStats,
}

/// What the cache asks of its disk-writer thread.
enum DiskCommand {
    /// Persist one record at `path` (write-then-rename). The `Arc` is
    /// shared with the in-memory shard: enqueueing copies a pointer, not
    /// the record.
    Store {
        path: PathBuf,
        record: Arc<TranslationRecord>,
    },
    /// Acknowledge once every command enqueued before this one is on disk.
    Flush(mpsc::SyncSender<()>),
}

/// Writer-thread counters shared between the enqueueing side and the
/// writer itself: the live queue depth and how many flush barriers have
/// completed. Read by `/v1/cache/stats` and mirrored into `/v1/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriterSnapshot {
    /// Store commands enqueued but not yet written to disk.
    pub queue_depth: u64,
    /// Flush barriers acknowledged since the cache was created.
    pub flushes: u64,
}

#[derive(Default)]
struct WriterStats {
    queue_depth: AtomicU64,
    flushes: AtomicU64,
}

/// The dedicated disk-writer thread and its bounded command channel.
struct DiskWriter {
    tx: Option<mpsc::SyncSender<DiskCommand>>,
    handle: Option<thread::JoinHandle<()>>,
    stats: Arc<WriterStats>,
    flush_seconds: lassi_obs::Histogram,
}

impl DiskWriter {
    fn spawn() -> DiskWriter {
        let (tx, rx) = mpsc::sync_channel::<DiskCommand>(WRITER_QUEUE_CAPACITY);
        let stats = Arc::new(WriterStats::default());
        let thread_stats = Arc::clone(&stats);
        let handle = thread::Builder::new()
            .name("lassi-cache-writer".into())
            .spawn(move || {
                while let Ok(command) = rx.recv() {
                    match command {
                        DiskCommand::Store { path, record } => {
                            // Serialization happens here, off the request
                            // path. Write-then-rename so a concurrent reader
                            // never sees a torn file; failures are tolerated
                            // (a missing entry is just a future miss).
                            let tmp = path.with_extension("json.tmp");
                            let text = record_to_json(&record).to_pretty();
                            if std::fs::write(&tmp, text).is_ok() {
                                let _ = std::fs::rename(&tmp, &path);
                            }
                            thread_stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        }
                        DiskCommand::Flush(ack) => {
                            // The channel is FIFO, so reaching this command
                            // means every earlier store has been written.
                            thread_stats.flushes.fetch_add(1, Ordering::Relaxed);
                            let _ = ack.send(());
                        }
                    }
                }
            })
            .expect("spawn cache writer thread");
        DiskWriter {
            tx: Some(tx),
            handle: Some(handle),
            stats,
            flush_seconds: lassi_obs::global().histogram(
                "lassi_cache_flush_seconds",
                "Latency of cache flush barriers (everything queued reaching disk).",
                &[],
                lassi_obs::LATENCY_SECONDS,
            ),
        }
    }

    fn send(&self, command: DiskCommand) {
        if let Some(tx) = &self.tx {
            if matches!(command, DiskCommand::Store { .. }) {
                self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            // A full channel blocks here: backpressure against a disk slower
            // than the workers, never unbounded memory.
            let _ = tx.send(command);
        }
    }

    fn flush(&self) {
        let started = std::time::Instant::now();
        let (ack_tx, ack_rx) = mpsc::sync_channel::<()>(1);
        self.send(DiskCommand::Flush(ack_tx));
        let _ = ack_rx.recv();
        self.flush_seconds.observe(started.elapsed().as_secs_f64());
    }

    fn snapshot(&self) -> WriterSnapshot {
        WriterSnapshot {
            queue_depth: self.stats.queue_depth.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for DiskWriter {
    fn drop(&mut self) {
        // Close the channel so the writer drains what is queued and exits,
        // then join it: dropping the cache is an implicit flush.
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The scenario cache: a sharded in-memory map, optionally backed by a
/// directory of `<key>.json` files maintained by a batched writer thread.
pub struct ScenarioCache {
    dir: Option<PathBuf>,
    shards: Vec<Shard>,
    writer: Option<DiskWriter>,
}

impl ScenarioCache {
    fn shards() -> Vec<Shard> {
        (0..SHARD_COUNT).map(|_| Shard::default()).collect()
    }

    /// Process-local cache with no persistence.
    pub fn in_memory() -> Self {
        ScenarioCache {
            dir: None,
            shards: Self::shards(),
            writer: None,
        }
    }

    /// Disk-backed cache rooted at `dir` (created if missing). Entries
    /// survive across processes, which is what makes a second `sweep`
    /// invocation 100% hits. Writes are batched through a dedicated writer
    /// thread; call [`ScenarioCache::flush`] (or drop the cache) before
    /// another process needs to observe them.
    pub fn on_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ScenarioCache {
            dir: Some(dir),
            shards: Self::shards(),
            writer: Some(DiskWriter::spawn()),
        })
    }

    /// The backing directory, if this cache persists to disk.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn shard(&self, key: ScenarioKey) -> &Shard {
        &self.shards[key.shard_index()]
    }

    /// Look a scenario up, counting the hit or miss.
    pub fn lookup(&self, key: ScenarioKey) -> Option<TranslationRecord> {
        let shard = self.shard(key);
        // Only the refcount bump happens under the lock; the deep clone the
        // caller receives is made after it is released.
        let resident = shard.map.lock().get(&key.0).map(Arc::clone);
        if let Some(record) = resident {
            shard.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some((*record).clone());
        }
        if let Some(record) = self.disk_lookup(key) {
            let shared = Arc::new(record);
            shard.map.lock().insert(key.0, Arc::clone(&shared));
            shard.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some((*shared).clone());
        }
        shard.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn disk_lookup(&self, key: ScenarioKey) -> Option<TranslationRecord> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(self.entry_path(dir, key)).ok()?;
        // A corrupt or truncated entry is treated as a miss and will be
        // overwritten by the recomputed record.
        let value = json::parse(&text).ok()?;
        record_from_json(&value).ok()
    }

    /// Store a freshly computed record under its key. The in-memory shard is
    /// updated synchronously (later lookups in this process hit); the disk
    /// write is queued onto the writer thread and lands asynchronously. One
    /// deep clone happens here, outside the lock; the shard map and the
    /// writer queue share it behind an `Arc`.
    pub fn store(&self, key: ScenarioKey, record: &TranslationRecord) {
        let shard = self.shard(key);
        shard.stats.stores.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(record.clone());
        shard.map.lock().insert(key.0, Arc::clone(&shared));
        if let (Some(dir), Some(writer)) = (&self.dir, &self.writer) {
            writer.send(DiskCommand::Store {
                path: self.entry_path(dir, key),
                record: shared,
            });
        }
    }

    /// Block until every store enqueued so far has reached disk. A no-op for
    /// an in-memory cache. Call before handing the backing directory to
    /// another process (or asserting on its contents).
    pub fn flush(&self) {
        if let Some(writer) = &self.writer {
            writer.flush();
        }
    }

    fn entry_path(&self, dir: &Path, key: ScenarioKey) -> PathBuf {
        dir.join(format!("{}.json", key.hex()))
    }

    /// Current counter values, summed across shards. Each shard's counters
    /// are exact, so the invariant `hits + misses == lookups` holds for the
    /// aggregate too.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut snapshot = CacheSnapshot::default();
        for shard in &self.shards {
            snapshot.hits += shard.stats.hits.load(Ordering::Relaxed);
            snapshot.misses += shard.stats.misses.load(Ordering::Relaxed);
            snapshot.stores += shard.stats.stores.load(Ordering::Relaxed);
        }
        snapshot
    }

    /// Per-shard counter values, indexed by shard. Summing these equals
    /// [`ScenarioCache::snapshot`] (both read the same atomics), which is
    /// what lets `/v1/cache/stats` and `/v1/metrics` stay consistent.
    pub fn shard_snapshots(&self) -> Vec<CacheSnapshot> {
        self.shards
            .iter()
            .map(|shard| CacheSnapshot {
                hits: shard.stats.hits.load(Ordering::Relaxed),
                misses: shard.stats.misses.load(Ordering::Relaxed),
                stores: shard.stats.stores.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Disk-writer queue depth and flush count; all zeros for an in-memory
    /// cache (there is no writer thread to observe).
    pub fn writer_snapshot(&self) -> WriterSnapshot {
        self.writer
            .as_ref()
            .map(DiskWriter::snapshot)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Job;
    use lassi_core::{Direction, PipelineConfig};
    use lassi_hecbench::application;
    use lassi_llm::gpt4;
    use std::sync::atomic::AtomicUsize;

    fn test_dir(label: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lassi-cache-test-{}-{label}-{n}",
            std::process::id()
        ))
    }

    fn job(app: &str, msc: u32) -> Job {
        Job::new(
            application(app).unwrap(),
            gpt4(),
            Direction::CudaToOmp,
            PipelineConfig {
                max_self_corrections: msc,
                timing_runs: 1,
                ..PipelineConfig::default()
            },
        )
    }

    #[test]
    fn keys_separate_every_dimension() {
        let base = scenario_key(&job("layout", 40));
        assert_eq!(base, scenario_key(&job("layout", 40)), "stable");
        assert_ne!(base, scenario_key(&job("entropy", 40)), "application");
        assert_ne!(base, scenario_key(&job("layout", 10)), "config override");
        let mut other_dir = job("layout", 40);
        other_dir.direction = Direction::OmpToCuda;
        assert_ne!(base, scenario_key(&other_dir), "direction");
        let mut other_model = job("layout", 40);
        other_model.model.profile.p_compile_fault += 0.01;
        assert_ne!(base, scenario_key(&other_model), "model profile");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn memory_cache_counts_hits_and_misses() {
        let cache = ScenarioCache::in_memory();
        let key = scenario_key(&job("layout", 40));
        assert!(cache.lookup(key).is_none());
        let record = job("layout", 40).run();
        cache.store(key, &record);
        assert_eq!(cache.lookup(key).as_ref(), Some(&record));
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.stores), (1, 1, 1));
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counters_aggregate_across_shards() {
        // Synthetic keys chosen to land in distinct shards; the aggregate
        // snapshot must still account for every lookup exactly once.
        let cache = ScenarioCache::in_memory();
        let record = job("layout", 40).run();
        let keys: Vec<ScenarioKey> = (0..SHARD_COUNT as u64).map(ScenarioKey).collect();
        for &key in &keys {
            assert!(cache.lookup(key).is_none());
            cache.store(key, &record);
        }
        for &key in &keys {
            assert!(cache.lookup(key).is_some());
        }
        let snap = cache.snapshot();
        let n = keys.len() as u64;
        assert_eq!((snap.hits, snap.misses, snap.stores), (n, n, n));
    }

    #[test]
    fn shard_snapshots_sum_to_the_aggregate() {
        let cache = ScenarioCache::in_memory();
        let record = job("layout", 40).run();
        for key in (0..64u64).map(|k| ScenarioKey(k.wrapping_mul(0x9e3779b97f4a7c15))) {
            assert!(cache.lookup(key).is_none());
            cache.store(key, &record);
            assert!(cache.lookup(key).is_some());
        }
        let shards = cache.shard_snapshots();
        assert_eq!(shards.len(), SHARD_COUNT);
        let total = cache.snapshot();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), total.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), total.misses);
        assert_eq!(shards.iter().map(|s| s.stores).sum::<u64>(), total.stores);
        assert_eq!((total.hits, total.misses, total.stores), (64, 64, 64));
        // No writer thread: the writer snapshot is all zeros.
        assert_eq!(cache.writer_snapshot(), WriterSnapshot::default());
    }

    #[test]
    fn writer_snapshot_counts_flushes_and_drains_the_queue() {
        let dir = test_dir("writer-stats");
        let cache = ScenarioCache::on_disk(&dir).unwrap();
        let record = job("layout", 40).run();
        for key in (0..8u64).map(ScenarioKey) {
            cache.store(key, &record);
        }
        cache.flush();
        cache.flush();
        let snap = cache.writer_snapshot();
        assert_eq!(snap.queue_depth, 0, "flush drains every queued store");
        assert_eq!(snap.flushes, 2);
        drop(cache);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_cache_persists_across_instances() {
        let dir = test_dir("persist");
        let key = scenario_key(&job("entropy", 40));
        let record = job("entropy", 40).run();
        {
            let cache = ScenarioCache::on_disk(&dir).unwrap();
            cache.store(key, &record);
            // Dropping the cache joins the writer thread — an implicit flush.
        }
        let fresh = ScenarioCache::on_disk(&dir).unwrap();
        assert_eq!(fresh.lookup(key).as_ref(), Some(&record));
        assert_eq!(fresh.snapshot().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_makes_stores_visible_on_disk() {
        let dir = test_dir("flush");
        let cache = ScenarioCache::on_disk(&dir).unwrap();
        let key = scenario_key(&job("layout", 40));
        let record = job("layout", 40).run();
        cache.store(key, &record);
        cache.flush();
        // Without dropping `cache`, the entry must already be a complete
        // JSON file another cache instance can read.
        let fresh = ScenarioCache::on_disk(&dir).unwrap();
        assert_eq!(fresh.lookup(key).as_ref(), Some(&record));
        drop(cache);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entries_degrade_to_misses() {
        let dir = test_dir("corrupt");
        let cache = ScenarioCache::on_disk(&dir).unwrap();
        let key = scenario_key(&job("layout", 40));
        std::fs::write(dir.join(format!("{}.json", key.hex())), "{ not json").unwrap();
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.snapshot().misses, 1);
        drop(cache);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
