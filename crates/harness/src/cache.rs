//! Content-addressed scenario cache.
//!
//! A scenario's [`TranslationRecord`] is fully determined by the application
//! sources, the model fingerprint, the direction, the derived per-scenario
//! seed and the pipeline configuration — the pipeline is deterministic, so a
//! cached record is *exact*, not approximate. The cache key hashes all of
//! those with FNV-1a (hand-rolled: `DefaultHasher` is explicitly not stable
//! across Rust releases, and disk entries must outlive a toolchain bump —
//! a changed hash only costs a miss, a *reused* wrong hash would corrupt).
//!
//! Two backings share one interface: a process-local in-memory map, and an
//! optional on-disk layer (one JSON file per scenario) that lets repeated
//! sweep *invocations* skip already-computed scenarios. Hit/miss counters
//! prove the speedup (`sweep --smoke` asserts a warm rerun is 100% hits).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use lassi_core::TranslationRecord;

use crate::codec::{record_from_json, record_to_json};
use crate::json;
use crate::scheduler::Job;

/// 64-bit FNV-1a over arbitrary bytes: small, stable, good enough dispersion
/// for a few thousand scenario keys.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content-addressed identity of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioKey(pub u64);

impl ScenarioKey {
    /// Hex form used as the on-disk file stem.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Derive the cache key for a job from everything that determines its record.
///
/// The leading version tag covers the *pipeline semantics* too: bump it when
/// a code change alters what a record would contain for identical inputs
/// (v2: the Sim-T tokenizer stopped gluing `.` into identifiers, shifting
/// similarity scores), so stale disk entries miss instead of resurfacing
/// scores the current code would never produce.
pub fn scenario_key(job: &Job) -> ScenarioKey {
    let config = &job.config;
    let canonical = format!(
        "v2;app={};cuda={:016x};omp={:016x};model={};dir={};seed={};msc={};runs={};\
         step={};hostop={:016x};startup={:016x}",
        job.application.name,
        fnv1a64(job.application.cuda_source.as_bytes()),
        fnv1a64(job.application.omp_source.as_bytes()),
        job.model.fingerprint(),
        job.direction.slug(),
        job.scenario_seed(),
        config.max_self_corrections,
        config.timing_runs,
        config.run_config.step_limit,
        config.run_config.host_op_seconds.to_bits(),
        config.run_config.startup_seconds.to_bits(),
    );
    ScenarioKey(fnv1a64(canonical.as_bytes()))
}

/// Hit/miss/store counters, cheap enough to share across worker threads.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

/// A point-in-time copy of the counters (for per-pass deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a pipeline run.
    pub misses: u64,
    /// Records written into the cache.
    pub stores: u64,
}

impl CacheSnapshot {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stores: self.stores - earlier.stores,
        }
    }
}

/// The scenario cache: always an in-memory map, optionally backed by a
/// directory of `<key>.json` files.
pub struct ScenarioCache {
    dir: Option<PathBuf>,
    memory: Mutex<HashMap<u64, TranslationRecord>>,
    stats: CacheStats,
}

impl ScenarioCache {
    /// Process-local cache with no persistence.
    pub fn in_memory() -> Self {
        ScenarioCache {
            dir: None,
            memory: Mutex::new(HashMap::new()),
            stats: CacheStats::default(),
        }
    }

    /// Disk-backed cache rooted at `dir` (created if missing). Entries
    /// survive across processes, which is what makes a second `sweep`
    /// invocation 100% hits.
    pub fn on_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ScenarioCache {
            dir: Some(dir),
            memory: Mutex::new(HashMap::new()),
            stats: CacheStats::default(),
        })
    }

    /// The backing directory, if this cache persists to disk.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Look a scenario up, counting the hit or miss.
    pub fn lookup(&self, key: ScenarioKey) -> Option<TranslationRecord> {
        if let Some(record) = self.memory.lock().get(&key.0) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some(record.clone());
        }
        if let Some(record) = self.disk_lookup(key) {
            self.memory.lock().insert(key.0, record.clone());
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some(record);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn disk_lookup(&self, key: ScenarioKey) -> Option<TranslationRecord> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(self.entry_path(dir, key)).ok()?;
        // A corrupt or truncated entry is treated as a miss and will be
        // overwritten by the recomputed record.
        let value = json::parse(&text).ok()?;
        record_from_json(&value).ok()
    }

    /// Store a freshly computed record under its key.
    pub fn store(&self, key: ScenarioKey, record: &TranslationRecord) {
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        self.memory.lock().insert(key.0, record.clone());
        if let Some(dir) = &self.dir {
            let path = self.entry_path(dir, key);
            let tmp = path.with_extension("json.tmp");
            let text = record_to_json(record).to_pretty();
            // Write-then-rename so a concurrent reader never sees a torn file.
            if std::fs::write(&tmp, text).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    fn entry_path(&self, dir: &Path, key: ScenarioKey) -> PathBuf {
        dir.join(format!("{}.json", key.hex()))
    }

    /// Current counter values.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            stores: self.stats.stores.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Job;
    use lassi_core::{Direction, PipelineConfig};
    use lassi_hecbench::application;
    use lassi_llm::gpt4;
    use std::sync::atomic::AtomicUsize;

    fn test_dir(label: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lassi-cache-test-{}-{label}-{n}",
            std::process::id()
        ))
    }

    fn job(app: &str, msc: u32) -> Job {
        Job::new(
            application(app).unwrap(),
            gpt4(),
            Direction::CudaToOmp,
            PipelineConfig {
                max_self_corrections: msc,
                timing_runs: 1,
                ..PipelineConfig::default()
            },
        )
    }

    #[test]
    fn keys_separate_every_dimension() {
        let base = scenario_key(&job("layout", 40));
        assert_eq!(base, scenario_key(&job("layout", 40)), "stable");
        assert_ne!(base, scenario_key(&job("entropy", 40)), "application");
        assert_ne!(base, scenario_key(&job("layout", 10)), "config override");
        let mut other_dir = job("layout", 40);
        other_dir.direction = Direction::OmpToCuda;
        assert_ne!(base, scenario_key(&other_dir), "direction");
        let mut other_model = job("layout", 40);
        other_model.model.profile.p_compile_fault += 0.01;
        assert_ne!(base, scenario_key(&other_model), "model profile");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn memory_cache_counts_hits_and_misses() {
        let cache = ScenarioCache::in_memory();
        let key = scenario_key(&job("layout", 40));
        assert!(cache.lookup(key).is_none());
        let record = job("layout", 40).run();
        cache.store(key, &record);
        assert_eq!(cache.lookup(key).as_ref(), Some(&record));
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.stores), (1, 1, 1));
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_cache_persists_across_instances() {
        let dir = test_dir("persist");
        let key = scenario_key(&job("entropy", 40));
        let record = job("entropy", 40).run();
        {
            let cache = ScenarioCache::on_disk(&dir).unwrap();
            cache.store(key, &record);
        }
        let fresh = ScenarioCache::on_disk(&dir).unwrap();
        assert_eq!(fresh.lookup(key).as_ref(), Some(&record));
        assert_eq!(fresh.snapshot().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entries_degrade_to_misses() {
        let dir = test_dir("corrupt");
        let cache = ScenarioCache::on_disk(&dir).unwrap();
        let key = scenario_key(&job("layout", 40));
        std::fs::write(dir.join(format!("{}.json", key.hex())), "{ not json").unwrap();
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.snapshot().misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
