//! # lassi-obs
//!
//! The observability core of the LASSI reproduction: a process-wide
//! [`metrics`] registry (atomic counters, gauges and fixed-boundary
//! log-bucketed histograms with a Prometheus-style text exposition) and a
//! [`trace`] module of explicitly-clocked spans and events (monotonic
//! [`std::time::Instant`]-based — no wall-clock dependence, so tests stay
//! deterministic).
//!
//! Everything here is dependency-free std (see the README "Dependency
//! policy"): instruments are plain atomics behind `Arc`s, cheap enough to
//! sit on the request and job hot paths, and the exposition renderer is a
//! few string pushes. Serialization of trace events to `trace.jsonl` lives
//! in `lassi-harness` (the crate that owns the hand-rolled JSON layer);
//! this crate only defines the data model and the clocks.

pub mod metrics;
pub mod trace;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, LATENCY_SECONDS,
};
pub use trace::{EventRing, FieldValue, TraceEvent, TraceKind, TraceSink, TRACE_SCHEMA};
