//! A process-wide metrics registry: named families of counters, gauges and
//! fixed-boundary histograms, identified by `(name, sorted labels)`, with a
//! Prometheus-style text exposition (`render`).
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cheap.** A handle ([`Counter`], [`Gauge`], [`Histogram`])
//!    is an `Arc` around plain atomics; `inc`/`observe` are lock-free.
//!    Registration (`Registry::counter` etc.) takes a mutex once — callers
//!    on hot paths register at startup and cache the handle.
//! 2. **One registry, many views.** `/v1/metrics`, `/v1/cache/stats`, the
//!    `--timings` tables and `BENCH_*.json` stage breakdowns all read the
//!    same counters; nothing is double-counted.
//! 3. **Deterministic exposition.** Families and series render in sorted
//!    order with stable float formatting, so the format can be pinned by a
//!    golden test.
//!
//! Metric names follow the Prometheus conventions used throughout the repo:
//! `lassi_` prefix, `_total` suffix on counters, unit suffixes (`_seconds`)
//! on histograms. The catalogue lives in the README "Observability" section.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Log-bucketed latency boundaries in seconds: 100 µs → 60 s in a 1–2.5–5
/// progression. Fixed boundaries keep series mergeable across processes and
/// the exposition stable.
pub const LATENCY_SECONDS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0, 60.0,
];

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the counter to `total` if it is currently below it. This is
    /// for mirroring an *external* monotone counter (e.g. per-shard cache
    /// stats) into the registry at scrape time: idempotent, and never
    /// moves the counter backwards.
    pub fn record_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; `buckets[bounds.len()]` is +Inf.
    buckets: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits and updated by CAS so
    /// concurrent observations never lose an addend.
    sum_bits: AtomicU64,
}

/// A fixed-boundary histogram. Cloning shares the underlying buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut old = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => old = actual,
            }
        }
    }

    /// A consistent-enough point-in-time copy (per-field atomic reads).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: core.count.load(Ordering::Relaxed),
            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the +Inf bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    /// Series keyed by their rendered `{label="value",...}` block (empty
    /// string for the unlabeled series); BTreeMap keeps exposition sorted.
    series: BTreeMap<String, Instrument>,
}

/// A collection of metric families. Most code uses the process-wide
/// [`global`] registry; tests construct their own for isolation.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Render a label block (`{k="v",...}`) with keys sorted and values
/// escaped per the Prometheus text format.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Join a base label block with one extra label (used for `le` buckets).
fn with_extra_label(block: &str, key: &str, value: &str) -> String {
    if block.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        // Insert before the closing brace.
        format!("{},{key}=\"{value}\"}}", &block[..block.len() - 1])
    }
}

/// Format an f64 the way the exposition needs it: shortest round-trip
/// representation, with infinities spelled `+Inf`/`-Inf`.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn instrument<F>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: F,
    ) -> Instrument
    where
        F: FnOnce() -> Instrument,
    {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric `{name}` registered twice with different kinds"
        );
        family
            .series
            .entry(label_block(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, Kind::Gauge, labels, || {
            Instrument::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Register (or look up) a histogram series with the given finite
    /// bucket boundaries (strictly increasing; +Inf is implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}` bounds must be strictly increasing"
        );
        match self.instrument(name, help, Kind::Histogram, labels, || {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Instrument::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            })))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The value of a counter series, if it has been registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.lock().expect("metrics registry poisoned");
        match families.get(name)?.series.get(&label_block(labels))? {
            Instrument::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// The value of a gauge series, if it has been registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let families = self.families.lock().expect("metrics registry poisoned");
        match families.get(name)?.series.get(&label_block(labels))? {
            Instrument::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// A snapshot of a histogram series, if it has been registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let families = self.families.lock().expect("metrics registry poisoned");
        match families.get(name)?.series.get(&label_block(labels))? {
            Instrument::Histogram(h) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Sum a counter family across all its label sets (0 if unregistered).
    pub fn counter_family_sum(&self, name: &str) -> u64 {
        let families = self.families.lock().expect("metrics registry poisoned");
        families.get(name).map_or(0, |f| {
            f.series
                .values()
                .map(|i| match i {
                    Instrument::Counter(c) => c.get(),
                    _ => 0,
                })
                .sum()
        })
    }

    /// Render the Prometheus text exposition: families sorted by name,
    /// series sorted by label block, `# HELP` and `# TYPE` headers, and
    /// `_bucket`/`_sum`/`_count` expansion for histograms.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.label()));
            for (block, instrument) in family.series.iter() {
                match instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&format!("{name}{block} {}\n", c.get()));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&format!("{name}{block} {}\n", g.get()));
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, bound) in snap.bounds.iter().enumerate() {
                            cumulative += snap.buckets[i];
                            let labels = with_extra_label(block, "le", &fmt_f64(*bound));
                            out.push_str(&format!("{name}_bucket{labels} {cumulative}\n"));
                        }
                        let labels = with_extra_label(block, "le", "+Inf");
                        out.push_str(&format!("{name}_bucket{labels} {}\n", snap.count));
                        out.push_str(&format!("{name}_sum{block} {}\n", fmt_f64(snap.sum)));
                        out.push_str(&format!("{name}_count{block} {}\n", snap.count));
                    }
                }
            }
        }
        out
    }
}

/// The process-wide registry every subsystem records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_count_exactly_under_contention() {
        let registry = Registry::new();
        let counter = registry.counter("lassi_test_total", "Test counter.", &[]);
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            registry.counter_value("lassi_test_total", &[]),
            Some(THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn gauges_go_up_and_down() {
        let registry = Registry::new();
        let gauge = registry.gauge("lassi_test_gauge", "Test gauge.", &[("shard", "0")]);
        gauge.set(5);
        gauge.add(3);
        gauge.dec();
        assert_eq!(gauge.get(), 7);
        assert_eq!(
            registry.gauge_value("lassi_test_gauge", &[("shard", "0")]),
            Some(7)
        );
        assert_eq!(registry.gauge_value("lassi_test_gauge", &[]), None);
    }

    #[test]
    fn histogram_buckets_sum_to_observation_count_under_contention() {
        let registry = Registry::new();
        let histogram = registry.histogram(
            "lassi_test_seconds",
            "Test histogram.",
            &[],
            LATENCY_SECONDS,
        );
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        thread::scope(|scope| {
            for t in 0..THREADS {
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread observations across buckets, including +Inf.
                        let v = match (t + i) % 4 {
                            0 => 0.00005,
                            1 => 0.003,
                            2 => 0.7,
                            _ => 120.0,
                        };
                        histogram.observe(v);
                    }
                });
            }
        });
        let snap = histogram.snapshot();
        let total = THREADS as u64 * PER_THREAD as u64;
        assert_eq!(snap.count, total);
        assert_eq!(snap.buckets.iter().sum::<u64>(), total);
        assert_eq!(snap.buckets.len(), LATENCY_SECONDS.len() + 1);
        assert!(snap.buckets[snap.buckets.len() - 1] > 0, "+Inf bucket used");
        // Each value lands in exactly the right bucket: 0.00005 <= 0.0001.
        assert_eq!(snap.buckets[0], total / 4);
    }

    #[test]
    fn histogram_sum_is_exact_for_representable_values() {
        let registry = Registry::new();
        let histogram = registry.histogram("lassi_sum_seconds", "Sum test.", &[], &[1.0]);
        for _ in 0..100 {
            histogram.observe(0.5);
        }
        assert_eq!(histogram.snapshot().sum, 50.0);
    }

    #[test]
    fn re_registration_returns_the_same_series() {
        let registry = Registry::new();
        let a = registry.counter("lassi_same_total", "Same.", &[("k", "v")]);
        let b = registry.counter("lassi_same_total", "Same.", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Label order does not create a new series.
        let c = registry.counter("lassi_two_total", "Two labels.", &[("b", "2"), ("a", "1")]);
        let d = registry.counter("lassi_two_total", "Two labels.", &[("a", "1"), ("b", "2")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("lassi_kind_total", "A counter.", &[]);
        registry.gauge("lassi_kind_total", "Now a gauge?", &[]);
    }

    #[test]
    fn exposition_format_is_pinned() {
        let registry = Registry::new();
        let requests = registry.counter(
            "lassi_http_requests_total",
            "HTTP requests served, by method, route and status.",
            &[("method", "GET"), ("route", "metrics"), ("status", "200")],
        );
        requests.add(3);
        registry
            .counter(
                "lassi_http_requests_total",
                "HTTP requests served, by method, route and status.",
                &[("method", "POST"), ("route", "sweeps"), ("status", "202")],
            )
            .add(8);
        let open = registry.gauge(
            "lassi_http_open_connections",
            "Currently open client connections.",
            &[],
        );
        open.set(2);
        let latency = registry.histogram(
            "lassi_job_execute_seconds",
            "Scheduler job execution time.",
            &[],
            &[0.01, 0.1, 1.0],
        );
        // Powers of two sum exactly in f64, keeping the golden text stable.
        latency.observe(0.0078125);
        latency.observe(0.0625);
        latency.observe(0.0625);
        latency.observe(2.5);

        let expected = "\
# HELP lassi_http_open_connections Currently open client connections.
# TYPE lassi_http_open_connections gauge
lassi_http_open_connections 2
# HELP lassi_http_requests_total HTTP requests served, by method, route and status.
# TYPE lassi_http_requests_total counter
lassi_http_requests_total{method=\"GET\",route=\"metrics\",status=\"200\"} 3
lassi_http_requests_total{method=\"POST\",route=\"sweeps\",status=\"202\"} 8
# HELP lassi_job_execute_seconds Scheduler job execution time.
# TYPE lassi_job_execute_seconds histogram
lassi_job_execute_seconds_bucket{le=\"0.01\"} 1
lassi_job_execute_seconds_bucket{le=\"0.1\"} 3
lassi_job_execute_seconds_bucket{le=\"1\"} 3
lassi_job_execute_seconds_bucket{le=\"+Inf\"} 4
lassi_job_execute_seconds_sum 2.6328125
lassi_job_execute_seconds_count 4
";
        assert_eq!(registry.render(), expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter("lassi_esc_total", "Escape test.", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = registry.render();
        assert!(text.contains("lassi_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("lassi_global_probe_total", "Probe.", &[]);
        global()
            .counter("lassi_global_probe_total", "Probe.", &[])
            .inc();
        assert!(a.get() >= 1);
    }
}
