//! Structured tracing: explicitly-clocked spans and events.
//!
//! Every timestamp is **microseconds since the owning sink's origin**, an
//! [`Instant`] captured when the sink was created — never wall-clock time,
//! so traces are reproducible in tests and immune to clock steps. A
//! [`TraceSink`] accumulates the events of one run (serialized to
//! `trace.jsonl` by `lassi-harness`, which owns the JSON layer); an
//! [`EventRing`] keeps a bounded buffer of recent process-wide events for
//! `GET /v1/debug/events`.
//!
//! The serialized schema is versioned as [`TRACE_SCHEMA`] (`trace.v1`) and
//! documented in the README "Observability" section.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version tag stamped on every serialized trace line.
pub const TRACE_SCHEMA: &str = "trace.v1";

/// A field value attached to a span or event. Deliberately small: just the
/// scalar types the hand-rolled JSON layer round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A boolean.
    Bool(bool),
    /// A signed integer (covers every duration/count the tracer records).
    Int(i64),
    /// A float (bit-exact through the JSON codec).
    Float(f64),
    /// A string.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::Int(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::Int(v as i64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::Int(v as i64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::Float(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Whether a trace entry is an instantaneous event or a timed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An instantaneous event (a state transition, a drain, an error).
    Event,
    /// A timed span with a duration (a job, a pipeline stage).
    Span,
}

impl TraceKind {
    /// Serialized form (`"event"` / `"span"`).
    pub fn slug(self) -> &'static str {
        match self {
            TraceKind::Event => "event",
            TraceKind::Span => "span",
        }
    }

    /// Inverse of [`TraceKind::slug`].
    pub fn from_slug(slug: &str) -> Option<TraceKind> {
        match slug {
            "event" => Some(TraceKind::Event),
            "span" => Some(TraceKind::Span),
            _ => None,
        }
    }
}

/// One entry in a trace: an event or a span, with its explicit clocking
/// and structured fields (insertion-ordered, like the JSON layer).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event or span.
    pub kind: TraceKind,
    /// What happened (`job`, `runstate`, `drain`, ...).
    pub name: String,
    /// Start time in microseconds since the sink's origin.
    pub t_us: u64,
    /// Duration in microseconds; `None` for instantaneous events.
    pub dur_us: Option<u64>,
    /// Structured payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// An instantaneous event at `t_us`.
    pub fn event(name: impl Into<String>, t_us: u64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Event,
            name: name.into(),
            t_us,
            dur_us: None,
            fields: Vec::new(),
        }
    }

    /// A span covering `[t_us, t_us + dur_us]`.
    pub fn span(name: impl Into<String>, t_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Span,
            name: name.into(),
            t_us,
            dur_us: Some(dur_us),
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder-style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> TraceEvent {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Collects the trace of one run. All timestamps are relative to the
/// sink's origin instant, captured at construction.
#[derive(Debug)]
pub struct TraceSink {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink whose clock starts now.
    pub fn new() -> TraceSink {
        TraceSink {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the sink's origin — the `t_us` a caller
    /// should stamp on events it pushes.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Append an entry.
    pub fn push(&self, event: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }

    /// Number of entries recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the entries recorded so far, in push order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }
}

/// A bounded ring of recent events: pushes past the capacity evict the
/// oldest entry and count as drops. Backs `GET /v1/debug/events`.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    origin: Instant,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            capacity: capacity.max(1),
            origin: Instant::now(),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the ring was created.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut buf = self.buf.lock().expect("event ring poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("event ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// How many events have been evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_keeps_push_order_and_fields() {
        let sink = TraceSink::new();
        sink.push(
            TraceEvent::span("job", 10, 5)
                .with("application", "layout")
                .with("index", 0usize)
                .with("from_cache", false),
        );
        sink.push(TraceEvent::event("runstate", 20).with("to", "done"));
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Span);
        assert_eq!(events[0].dur_us, Some(5));
        assert_eq!(
            events[0].field("application"),
            Some(&FieldValue::Str("layout".into()))
        );
        assert_eq!(events[1].field("to"), Some(&FieldValue::Str("done".into())));
        assert_eq!(events[1].dur_us, None);
    }

    #[test]
    fn sink_clock_is_monotone() {
        let sink = TraceSink::new();
        let a = sink.now_us();
        let b = sink.now_us();
        assert!(b >= a);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent::event("e", i));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].t_us, 2, "oldest two evicted");
        assert_eq!(events[2].t_us, 4);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn kind_slugs_round_trip() {
        for kind in [TraceKind::Event, TraceKind::Span] {
            assert_eq!(TraceKind::from_slug(kind.slug()), Some(kind));
        }
        assert_eq!(TraceKind::from_slug("nope"), None);
    }
}
