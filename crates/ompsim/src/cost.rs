//! Cost model for the simulated OpenMP runtime.

use lassi_lang::{Expr, OmpClause, OmpDirective};
use lassi_runtime::CostCounter;

/// Static description of the OpenMP execution environment: a multi-core host
/// plus an offload target device reached through `#pragma omp target`.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpSpec {
    /// Descriptive name used in reports.
    pub name: String,
    /// Host CPU cores available to `parallel for`.
    pub host_cores: u32,
    /// Per-core scalar throughput in OP/s.
    pub core_ops_per_sec: f64,
    /// Host memory bandwidth in bytes/s.
    pub host_mem_bandwidth: f64,
    /// Cost of opening a host parallel region, in seconds.
    pub parallel_region_overhead: f64,
    /// Extra cost per dynamically scheduled chunk, in seconds.
    pub dynamic_chunk_overhead: f64,

    /// Peak throughput of the offload device in OP/s. Lower than the raw GPU
    /// peak because `omp target` code generation is less efficient than
    /// hand-written CUDA (this matches the gap HeCBench reports).
    pub offload_peak_ops: f64,
    /// Offload device memory bandwidth in bytes/s.
    pub offload_mem_bandwidth: f64,
    /// Maximum concurrently resident device threads.
    pub offload_max_threads: u64,
    /// Fixed cost of launching one `target` region, in seconds.
    pub offload_region_overhead: f64,
    /// Host↔device transfer bandwidth in bytes/s.
    pub transfer_bandwidth: f64,
    /// Fixed latency per transfer, in seconds.
    pub transfer_latency: f64,
    /// Default threads per team when no `thread_limit`/`num_threads` clause
    /// is given.
    pub default_team_threads: u32,
    /// Serialized atomic throughput on the offload device, in OP/s.
    pub atomic_throughput: f64,
}

impl OmpSpec {
    /// A dual-socket host with an A100-class offload device, matching the
    /// paper's experimental platform.
    pub fn a100_offload() -> Self {
        OmpSpec {
            name: "2x EPYC host + A100 offload (simulated)".to_string(),
            host_cores: 64,
            core_ops_per_sec: 3.2e9,
            host_mem_bandwidth: 2.0e11,
            parallel_region_overhead: 6.0e-6,
            dynamic_chunk_overhead: 2.5e-7,
            offload_peak_ops: 11.0e12,
            offload_mem_bandwidth: 1.3e12,
            offload_max_threads: 108 * 2048,
            offload_region_overhead: 4.5e-5,
            transfer_bandwidth: 16.0e9,
            transfer_latency: 1.1e-5,
            default_team_threads: 128,
            atomic_throughput: 1.4e9,
        }
    }

    /// Seconds to move `bytes` across the host↔device link once.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.transfer_latency + bytes as f64 / self.transfer_bandwidth
    }
}

impl Default for OmpSpec {
    fn default() -> Self {
        OmpSpec::a100_offload()
    }
}

/// Parallelism resources granted to one work-sharing region, extracted from
/// the directive's clauses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionResources {
    /// Worker threads that execute loop iterations.
    pub threads: u64,
    /// True when the region uses dynamic scheduling.
    pub dynamic: bool,
}

/// Extract a literal integer from a clause expression when possible. Clause
/// expressions in the benchmark programs are always literals or simple
/// constants; anything else falls back to `None` (use the default).
fn clause_int(e: &Expr) -> Option<u64> {
    match e {
        Expr::IntLit(v) if *v > 0 => Some(*v as u64),
        _ => None,
    }
}

impl OmpSpec {
    /// Determine how many workers a directive gets and how it is scheduled.
    pub fn region_resources(
        &self,
        directive: &OmpDirective,
        offload: bool,
        iterations: u64,
    ) -> RegionResources {
        let mut num_threads: Option<u64> = None;
        let mut num_teams: Option<u64> = None;
        let mut thread_limit: Option<u64> = None;
        let mut dynamic = false;
        for clause in &directive.clauses {
            match clause {
                OmpClause::NumThreads(e) => num_threads = clause_int(e),
                OmpClause::NumTeams(e) => num_teams = clause_int(e),
                OmpClause::ThreadLimit(e) => thread_limit = clause_int(e),
                OmpClause::Schedule { kind, .. } => {
                    dynamic = matches!(kind, lassi_lang::ScheduleKind::Dynamic);
                }
                _ => {}
            }
        }
        let threads = if offload {
            let per_team = thread_limit
                .or(num_threads)
                .unwrap_or(self.default_team_threads as u64)
                .max(1);
            let teams = num_teams
                .unwrap_or_else(|| iterations.div_ceil(per_team).max(1))
                .max(1);
            (per_team * teams).min(self.offload_max_threads).max(1)
        } else {
            num_threads.unwrap_or(self.host_cores as u64).clamp(1, 4096)
        };
        RegionResources { threads, dynamic }
    }

    /// Simulated seconds for one work-sharing region (excluding `map`
    /// transfers, which are charged separately by the host evaluator).
    pub fn region_seconds(
        &self,
        cost: &CostCounter,
        resources: RegionResources,
        offload: bool,
        iterations: u64,
    ) -> f64 {
        let ops = cost.total_ops() as f64;
        let bytes = cost.total_bytes() as f64;
        let (overhead, peak_ops, bandwidth, capacity) = if offload {
            (
                self.offload_region_overhead,
                self.offload_peak_ops,
                self.offload_mem_bandwidth,
                self.offload_max_threads as f64,
            )
        } else {
            (
                self.parallel_region_overhead,
                self.core_ops_per_sec * self.host_cores as f64,
                self.host_mem_bandwidth,
                self.host_cores as f64,
            )
        };
        let utilization = (resources.threads as f64 / capacity).clamp(1.0 / capacity, 1.0);
        let mem_utilization = (utilization * 4.0).clamp(1.0 / capacity, 1.0);
        let compute = ops / (peak_ops * utilization);
        let memory = bytes / (bandwidth * mem_utilization);
        let atomics = cost.atomics as f64 / self.atomic_throughput;
        let schedule = if resources.dynamic {
            iterations as f64 * self.dynamic_chunk_overhead / resources.threads as f64
                + iterations as f64 * 2.0e-9
        } else {
            0.0
        };
        overhead + compute.max(memory) + atomics + schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_lang::{OmpDirectiveKind, ScheduleKind};

    fn directive(clauses: Vec<OmpClause>) -> OmpDirective {
        OmpDirective {
            kind: OmpDirectiveKind::TargetTeamsDistributeParallelFor,
            clauses,
        }
    }

    #[test]
    fn default_offload_resources_scale_with_iterations() {
        let spec = OmpSpec::a100_offload();
        let d = directive(vec![]);
        let small = spec.region_resources(&d, true, 256);
        let large = spec.region_resources(&d, true, 1_000_000);
        assert!(large.threads > small.threads);
        assert!(large.threads <= spec.offload_max_threads);
    }

    #[test]
    fn num_threads_clause_limits_parallelism() {
        let spec = OmpSpec::a100_offload();
        let d = directive(vec![
            OmpClause::NumTeams(Expr::IntLit(1)),
            OmpClause::NumThreads(Expr::IntLit(1)),
        ]);
        let r = spec.region_resources(&d, true, 100_000);
        assert_eq!(r.threads, 1);
    }

    #[test]
    fn serialized_region_much_slower() {
        let spec = OmpSpec::a100_offload();
        let cost = CostCounter {
            flops: 10_000_000,
            bytes_read: 80_000_000,
            ..Default::default()
        };
        let wide = spec.region_seconds(
            &cost,
            RegionResources {
                threads: 100_000,
                dynamic: false,
            },
            true,
            100_000,
        );
        let narrow = spec.region_seconds(
            &cost,
            RegionResources {
                threads: 1,
                dynamic: false,
            },
            true,
            100_000,
        );
        assert!(narrow > wide * 50.0);
    }

    #[test]
    fn dynamic_schedule_costs_more() {
        let spec = OmpSpec::a100_offload();
        let d_static = directive(vec![OmpClause::Schedule {
            kind: ScheduleKind::Static,
            chunk: None,
        }]);
        let d_dynamic = directive(vec![OmpClause::Schedule {
            kind: ScheduleKind::Dynamic,
            chunk: None,
        }]);
        let cost = CostCounter {
            flops: 1_000_000,
            ..Default::default()
        };
        let iterations = 100_000;
        let rs = spec.region_resources(&d_static, true, iterations);
        let rd = spec.region_resources(&d_dynamic, true, iterations);
        let ts = spec.region_seconds(&cost, rs, true, iterations);
        let td = spec.region_seconds(&cost, rd, true, iterations);
        assert!(td > ts);
    }

    #[test]
    fn host_region_cheaper_than_offload_for_tiny_work() {
        let spec = OmpSpec::a100_offload();
        let d = OmpDirective {
            kind: OmpDirectiveKind::ParallelFor,
            clauses: vec![],
        };
        let cost = CostCounter {
            flops: 10_000,
            bytes_read: 1_000,
            ..Default::default()
        };
        let host =
            spec.region_seconds(&cost, spec.region_resources(&d, false, 1_000), false, 1_000);
        let off = spec.region_seconds(&cost, spec.region_resources(&d, true, 1_000), true, 1_000);
        assert!(
            host < off,
            "tiny loops should not benefit from offload ({host} vs {off})"
        );
    }

    #[test]
    fn transfer_seconds_has_latency_floor() {
        let spec = OmpSpec::a100_offload();
        assert!(spec.transfer_seconds(0) >= spec.transfer_latency);
        assert!(spec.transfer_seconds(1 << 30) > spec.transfer_seconds(1 << 10));
    }
}
