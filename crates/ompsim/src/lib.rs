//! # lassi-ompsim
//!
//! A simulated OpenMP runtime (host threads + `target` offload) for OmpLite
//! programs. It is the counterpart of `lassi-gpusim` for the other half of the
//! LASSI translation pair:
//!
//! * **functional execution** — every iteration of a work-sharing loop runs
//!   through the ParC evaluator against the shared [`Memory`], with OpenMP
//!   reduction semantics (private copies initialised to the identity, combined
//!   at the end), so translated programs produce real output and real runtime
//!   errors;
//! * **performance model** — compute and memory-traffic counts are converted
//!   to simulated seconds using either the host-CPU model (plain
//!   `parallel for`) or the offload model (`target teams distribute parallel
//!   for`), which charges the characteristic per-region launch overhead and
//!   per-`map` transfer costs that make naive OpenMP offload codes slow
//!   (the `jacobi` / `dense-embedding` pattern from the paper's Table IV).

pub mod cost;
pub mod exec;

pub use cost::OmpSpec;
pub use exec::OmpSimulator;

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_lang::{parse, Dialect};
    use lassi_runtime::{HostInterpreter, RunConfig};

    #[test]
    fn offload_reduction_end_to_end() {
        let src = r#"
        int main() {
            int n = 1000;
            double* a = (double*)malloc(n * sizeof(double));
            for (int i = 0; i < n; i++) { a[i] = i * 1.0; }
            double sum = 0.0;
            #pragma omp target teams distribute parallel for map(to: a[0:n]) map(tofrom: sum) reduction(+:sum)
            for (int i = 0; i < n; i++) {
                sum += a[i];
            }
            printf("sum %.1f\n", sum);
            free(a);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::OmpLite).unwrap();
        let omp = OmpSimulator::a100_offload();
        let mut interp = HostInterpreter::new(&program, RunConfig::default());
        let report = interp.run(&omp, &[]).unwrap();
        assert_eq!(report.stdout, "sum 499500.0\n");
        assert!(report.parallel_seconds > 0.0);
    }

    #[test]
    fn host_parallel_for_end_to_end() {
        let src = r#"
        int main() {
            int n = 500;
            double* out = (double*)malloc(n * sizeof(double));
            #pragma omp parallel for schedule(static)
            for (int i = 0; i < n; i++) {
                out[i] = i * 0.5;
            }
            printf("%.1f %.1f\n", out[0], out[499]);
            free(out);
            return 0;
        }
        "#;
        let program = parse(src, Dialect::OmpLite).unwrap();
        let omp = OmpSimulator::a100_offload();
        let mut interp = HostInterpreter::new(&program, RunConfig::default());
        let report = interp.run(&omp, &[]).unwrap();
        assert_eq!(report.stdout, "0.0 249.5\n");
    }
}
