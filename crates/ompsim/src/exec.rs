//! Work-sharing loop execution for the simulated OpenMP runtime.

use rayon::prelude::*;

use lassi_lang::{ReductionOp, Type};
use lassi_runtime::{
    CompiledParallelFor, ControlFlow, CostCounter, EvalContext, Evaluator, ExecError, LaunchStats,
    Memory, ParallelBackend, ParallelForRequest, Value, Vm,
};

use crate::cost::OmpSpec;

/// Hard cap on simulated loop iterations per region.
const MAX_SIMULATED_ITERATIONS: u64 = 8_000_000;

/// Per-worker step budget.
const WORKER_STEP_LIMIT: u64 = 50_000_000;

/// Number of functional execution chunks used to run a region (chunks run in
/// parallel with rayon; this is a simulation detail, independent of the
/// *modelled* thread count that drives the cost model).
const EXEC_CHUNKS: u64 = 64;

/// The simulated OpenMP runtime. Implements [`ParallelBackend`] for
/// work-sharing loops (both host `parallel for` and `target` offload).
pub struct OmpSimulator {
    spec: OmpSpec,
}

impl OmpSimulator {
    /// Simulator for an arbitrary environment.
    pub fn new(spec: OmpSpec) -> Self {
        OmpSimulator { spec }
    }

    /// Simulator for the paper's platform (multi-core host + A100 offload).
    pub fn a100_offload() -> Self {
        OmpSimulator {
            spec: OmpSpec::a100_offload(),
        }
    }

    /// The cost specification in use.
    pub fn spec(&self) -> &OmpSpec {
        &self.spec
    }
}

fn reduction_identity(op: ReductionOp, ty: &Type) -> Value {
    match op {
        ReductionOp::Add => {
            if ty.is_integer() {
                Value::Int(0)
            } else {
                Value::Float(0.0)
            }
        }
        ReductionOp::Mul => {
            if ty.is_integer() {
                Value::Int(1)
            } else {
                Value::Float(1.0)
            }
        }
        ReductionOp::Min => {
            if ty.is_integer() {
                Value::Int(i64::MAX)
            } else {
                Value::Float(f64::INFINITY)
            }
        }
        ReductionOp::Max => {
            if ty.is_integer() {
                Value::Int(i64::MIN)
            } else {
                Value::Float(f64::NEG_INFINITY)
            }
        }
    }
}

fn reduce_combine(op: ReductionOp, ty: &Type, a: &Value, b: &Value) -> Value {
    if ty.is_integer() {
        let (x, y) = (a.as_int(), b.as_int());
        Value::Int(match op {
            ReductionOp::Add => x + y,
            ReductionOp::Mul => x * y,
            ReductionOp::Min => x.min(y),
            ReductionOp::Max => x.max(y),
        })
    } else {
        let (x, y) = (a.as_float(), b.as_float());
        Value::Float(match op {
            ReductionOp::Add => x + y,
            ReductionOp::Mul => x * y,
            ReductionOp::Min => x.min(y),
            ReductionOp::Max => x.max(y),
        })
    }
}

struct ChunkResult {
    cost: CostCounter,
    reductions: Vec<Value>,
}

impl ParallelBackend for OmpSimulator {
    fn parallel_for(
        &self,
        req: &ParallelForRequest<'_>,
        mem: &Memory,
    ) -> Result<LaunchStats, ExecError> {
        let iterations = if req.hi > req.lo {
            ((req.hi - req.lo) as u64).div_ceil(req.step.max(1) as u64)
        } else {
            0
        };
        if iterations > MAX_SIMULATED_ITERATIONS {
            return Err(ExecError::other(format!(
                "line {}: work-sharing loop of {iterations} iterations exceeds the simulator limit of {MAX_SIMULATED_ITERATIONS}",
                req.line
            )));
        }

        // Reduction bookkeeping.
        let reduction = req
            .directive
            .reduction()
            .map(|(op, vars)| (op, vars.clone()));
        let reduction_types: Vec<Type> = match &reduction {
            Some((_, vars)) => vars
                .iter()
                .map(|v| {
                    req.base_env
                        .get(v)
                        .map(|b| b.ty.clone())
                        .unwrap_or(Type::Double)
                })
                .collect(),
            None => Vec::new(),
        };

        let resources = self
            .spec
            .region_resources(req.directive, req.offload, iterations);

        // Functional execution over chunks of the iteration space.
        let chunk_count = EXEC_CHUNKS.min(iterations.max(1));
        let chunk_size = iterations.div_ceil(chunk_count).max(1);
        let chunk_ids: Vec<u64> = (0..chunk_count).collect();

        let results: Result<Vec<ChunkResult>, ExecError> = chunk_ids
            .par_iter()
            .map(|&chunk| {
                let first = chunk * chunk_size;
                let last = ((chunk + 1) * chunk_size).min(iterations);
                if first >= last {
                    return Ok(ChunkResult {
                        cost: CostCounter::new(),
                        reductions: reduction_types
                            .iter()
                            .zip(
                                reduction
                                    .iter()
                                    .flat_map(|(op, vars)| vars.iter().map(move |_| *op)),
                            )
                            .map(|(ty, op)| reduction_identity(op, ty))
                            .collect(),
                    });
                }
                let ctx = EvalContext::OmpWorker {
                    thread_num: (chunk % resources.threads.max(1)) as i64,
                    num_threads: resources.threads as i64,
                    offloaded: req.offload,
                };
                let mut eval = Evaluator::for_context(req.program, ctx, WORKER_STEP_LIMIT);
                let mut env = req.base_env.clone();
                // Private copies of reduction variables start at the identity.
                if let Some((op, vars)) = &reduction {
                    for (var, ty) in vars.iter().zip(&reduction_types) {
                        let ident = reduction_identity(*op, ty);
                        if !env.set(var, ident.clone()) {
                            env.declare(var, ty.clone(), ident);
                        }
                    }
                }
                // Loop variable is private to each iteration.
                env.declare(&req.loop_var, Type::Long, Value::Int(req.lo));
                for k in first..last {
                    let i = req.lo + (k as i64) * req.step;
                    env.set(&req.loop_var, Value::Int(i));
                    match eval.exec_block(req.body, &mut env, mem)? {
                        ControlFlow::Normal | ControlFlow::Continue => {}
                        ControlFlow::Break => break,
                        ControlFlow::Return(_) => {
                            return Err(ExecError::other(format!(
                            "line {}: 'return' is not allowed inside an OpenMP work-sharing region",
                            req.line
                        )))
                        }
                    }
                }
                let reductions = match &reduction {
                    Some((_, vars)) => vars
                        .iter()
                        .map(|v| env.get(v).map(|b| b.value.clone()).unwrap_or(Value::Int(0)))
                        .collect(),
                    None => Vec::new(),
                };
                Ok(ChunkResult {
                    cost: eval.cost,
                    reductions,
                })
            })
            .collect();

        let results = results?;
        let mut cost = CostCounter::new();
        for r in &results {
            cost.merge(&r.cost);
        }

        // Combine reductions across chunks and with the original values.
        let mut reduction_updates = Vec::new();
        if let Some((op, vars)) = &reduction {
            for (vi, (var, ty)) in vars.iter().zip(&reduction_types).enumerate() {
                let mut acc = reduction_identity(*op, ty);
                for r in &results {
                    if let Some(v) = r.reductions.get(vi) {
                        acc = reduce_combine(*op, ty, &acc, v);
                    }
                }
                let original = req
                    .base_env
                    .get(var)
                    .map(|b| b.value.clone())
                    .unwrap_or_else(|| reduction_identity(*op, ty));
                let combined = reduce_combine(*op, ty, &original, &acc);
                reduction_updates.push((var.clone(), combined));
            }
        }

        let simulated_seconds = self
            .spec
            .region_seconds(&cost, resources, req.offload, iterations);
        Ok(LaunchStats {
            simulated_seconds,
            cost,
            reduction_updates,
        })
    }

    fn compiled_parallel_for(
        &self,
        req: &CompiledParallelFor<'_>,
        mem: &Memory,
    ) -> Result<LaunchStats, ExecError> {
        let region = &req.program.regions[req.region as usize];
        let iterations = if req.hi > req.lo {
            ((req.hi - req.lo) as u64).div_ceil(req.step.max(1) as u64)
        } else {
            0
        };
        if iterations > MAX_SIMULATED_ITERATIONS {
            return Err(ExecError::other(format!(
                "line {}: work-sharing loop of {iterations} iterations exceeds the simulator limit of {MAX_SIMULATED_ITERATIONS}",
                req.line
            )));
        }

        let resources = self
            .spec
            .region_resources(&region.directive, req.offload, iterations);

        // Functional execution over chunks of the iteration space.
        let chunk_count = EXEC_CHUNKS.min(iterations.max(1));
        let chunk_size = iterations.div_ceil(chunk_count).max(1);
        let chunk_ids: Vec<u64> = (0..chunk_count).collect();

        let results: Result<Vec<ChunkResult>, ExecError> = chunk_ids
            .par_iter()
            .map(|&chunk| {
                let first = chunk * chunk_size;
                let last = ((chunk + 1) * chunk_size).min(iterations);
                if first >= last {
                    return Ok(ChunkResult {
                        cost: CostCounter::new(),
                        reductions: region
                            .reductions
                            .iter()
                            .map(|r| reduction_identity(r.op, &r.ty))
                            .collect(),
                    });
                }
                let ctx = EvalContext::OmpWorker {
                    thread_num: (chunk % resources.threads.max(1)) as i64,
                    num_threads: resources.threads as i64,
                    offloaded: req.offload,
                };
                let mut vm = Vm::for_context(req.program, ctx, WORKER_STEP_LIMIT);
                vm.prepare_frame(region.nslots);
                for (i, v) in req.captures.iter().enumerate() {
                    vm.set_slot(i as u32, v.clone());
                }
                // Private copies of reduction variables start at the identity.
                for r in &region.reductions {
                    let ident = reduction_identity(r.op, &r.ty);
                    let seed = if r.init_coerce {
                        ident.coerce_to(&r.ty)
                    } else {
                        ident
                    };
                    vm.set_slot(r.init_slot, seed);
                }
                // Loop variable is private to each iteration.
                for k in first..last {
                    let i = req.lo + (k as i64) * req.step;
                    vm.set_slot(region.loop_var_slot, Value::Int(i));
                    match vm.run_unit(mem, region.body_entry)? {
                        ControlFlow::Normal | ControlFlow::Continue => {}
                        ControlFlow::Break => break,
                        ControlFlow::Return(_) => {
                            return Err(ExecError::other(format!(
                            "line {}: 'return' is not allowed inside an OpenMP work-sharing region",
                            req.line
                        )))
                        }
                    }
                }
                let reductions = region
                    .reductions
                    .iter()
                    .map(|r| vm.slot(r.read_slot).clone())
                    .collect();
                Ok(ChunkResult {
                    cost: vm.cost,
                    reductions,
                })
            })
            .collect();

        let results = results?;
        let mut cost = CostCounter::new();
        for r in &results {
            cost.merge(&r.cost);
        }

        // Combine reductions across chunks and with the original values.
        let mut reduction_updates = Vec::new();
        for (vi, r) in region.reductions.iter().enumerate() {
            let mut acc = reduction_identity(r.op, &r.ty);
            for chunk in &results {
                if let Some(v) = chunk.reductions.get(vi) {
                    acc = reduce_combine(r.op, &r.ty, &acc, v);
                }
            }
            let original = if r.init_coerce {
                req.captures[r.init_slot as usize].clone()
            } else {
                reduction_identity(r.op, &r.ty)
            };
            let combined = reduce_combine(r.op, &r.ty, &original, &acc);
            reduction_updates.push((r.var.clone(), combined));
        }

        let simulated_seconds = self
            .spec
            .region_seconds(&cost, resources, req.offload, iterations);
        Ok(LaunchStats {
            simulated_seconds,
            cost,
            reduction_updates,
        })
    }

    fn memcpy_seconds(&self, bytes: u64) -> f64 {
        self.spec.transfer_seconds(bytes)
    }

    fn name(&self) -> &'static str {
        "ompsim-a100-offload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lassi_lang::{parse, Dialect};
    use lassi_runtime::{HostInterpreter, RunConfig};

    fn run_omp(src: &str) -> Result<lassi_runtime::ExecutionReport, ExecError> {
        let program = parse(src, Dialect::OmpLite).unwrap();
        let omp = OmpSimulator::a100_offload();
        let mut interp = HostInterpreter::new(&program, RunConfig::default());
        interp.run(&omp, &[])
    }

    #[test]
    fn reduction_matches_sequential_sum() {
        let report = run_omp(
            r#"
            int main() {
                int n = 2000;
                double sum = 100.0;
                #pragma omp target teams distribute parallel for reduction(+:sum)
                for (int i = 0; i < n; i++) { sum += i; }
                printf("%.1f\n", sum);
                return 0;
            }
            "#,
        )
        .unwrap();
        // 100 + sum_{i<2000} i = 100 + 1999000
        assert_eq!(report.stdout, "1999100.0\n");
    }

    #[test]
    fn max_reduction() {
        let report = run_omp(
            r#"
            int main() {
                int n = 100;
                double best = -1.0;
                double* a = (double*)malloc(n * sizeof(double));
                for (int i = 0; i < n; i++) { a[i] = (i * 37) % 91; }
                #pragma omp target teams distribute parallel for map(to: a[0:n]) reduction(max:best)
                for (int i = 0; i < n; i++) {
                    if (a[i] > best) { best = a[i]; }
                }
                printf("%.1f\n", best);
                free(a);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(report.stdout, "90.0\n");
    }

    #[test]
    fn array_writes_visible_after_region() {
        let report = run_omp(
            r#"
            int main() {
                int n = 300;
                long* out = (long*)malloc(n * sizeof(long));
                #pragma omp target teams distribute parallel for map(from: out[0:n])
                for (int i = 0; i < n; i++) { out[i] = i * i; }
                printf("%ld %ld\n", out[2], out[299]);
                free(out);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(report.stdout, "4 89401\n");
    }

    #[test]
    fn atomic_update_inside_region() {
        let report = run_omp(
            r#"
            int main() {
                int n = 1000;
                double* total = (double*)malloc(1 * sizeof(double));
                total[0] = 0.0;
                #pragma omp target teams distribute parallel for map(tofrom: total[0:1])
                for (int i = 0; i < n; i++) {
                    #pragma omp atomic
                    total[0] += 1.0;
                }
                printf("%.1f\n", total[0]);
                free(total);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(report.stdout, "1000.0\n");
    }

    #[test]
    fn runtime_error_in_region_propagates() {
        let err = run_omp(
            r#"
            int main() {
                int n = 10;
                double* a = (double*)malloc(4 * sizeof(double));
                #pragma omp target teams distribute parallel for map(tofrom: a[0:4])
                for (int i = 0; i < n; i++) { a[i] = i; }
                free(a);
                return 0;
            }
            "#,
        )
        .unwrap_err();
        assert_eq!(err.category(), "out_of_bounds");
    }

    #[test]
    fn unmapped_buffer_in_offload_region_fails() {
        let err = run_omp(
            r#"
            int main() {
                int n = 16;
                double* a = (double*)malloc(n * sizeof(double));
                #pragma omp target teams distribute parallel for
                for (int i = 0; i < n; i++) { a[i] = i; }
                free(a);
                return 0;
            }
            "#,
        )
        .unwrap_err();
        assert_eq!(err.category(), "illegal_memory_space");
    }

    #[test]
    fn host_parallel_for_accesses_host_memory_without_map() {
        let report = run_omp(
            r#"
            int main() {
                int n = 64;
                double* a = (double*)malloc(n * sizeof(double));
                #pragma omp parallel for num_threads(8)
                for (int i = 0; i < n; i++) { a[i] = 2.0 * i; }
                printf("%.1f\n", a[63]);
                free(a);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(report.stdout, "126.0\n");
    }

    #[test]
    fn transfers_dominate_when_mapping_inside_a_loop() {
        // The naive "map per iteration" pattern (the reason jacobi/dense-embedding
        // are slow in OpenMP in Table IV) must cost far more than mapping once.
        let per_iteration = run_omp(
            r#"
            int main() {
                int n = 60000;
                int iters = 8;
                double* a = (double*)malloc(n * sizeof(double));
                double sum = 0.0;
                for (int it = 0; it < iters; it++) {
                    #pragma omp target teams distribute parallel for map(tofrom: a[0:n]) map(tofrom: sum) reduction(+:sum)
                    for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; sum += 1.0; }
                }
                printf("%.1f\n", sum);
                free(a);
                return 0;
            }
            "#,
        )
        .unwrap();
        let map_once = run_omp(
            r#"
            int main() {
                int n = 60000;
                int iters = 8;
                double* a = (double*)malloc(n * sizeof(double));
                double sum = 0.0;
                #pragma omp target data map(tofrom: a[0:n])
                {
                    for (int it = 0; it < iters; it++) {
                        #pragma omp target teams distribute parallel for map(tofrom: sum) reduction(+:sum)
                        for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; sum += 1.0; }
                    }
                }
                printf("%.1f\n", sum);
                free(a);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(per_iteration.stdout, map_once.stdout);
        assert!(
            per_iteration.parallel_seconds > map_once.parallel_seconds * 1.5,
            "per-iteration mapping should be much slower ({} vs {})",
            per_iteration.parallel_seconds,
            map_once.parallel_seconds
        );
    }

    #[test]
    fn backend_name_and_spec() {
        let sim = OmpSimulator::a100_offload();
        assert_eq!(sim.name(), "ompsim-a100-offload");
        assert_eq!(sim.spec().host_cores, 64);
    }
}
