//! # lassi
//!
//! Umbrella crate for the LASSI reproduction: re-exports the public API of
//! every workspace crate so examples and downstream users can depend on a
//! single package.
//!
//! ```
//! use lassi::prelude::*;
//!
//! let app = application("layout").expect("benchmark exists");
//! let report = run_application(&app, Dialect::CudaLite).expect("reference run");
//! assert!(report.stdout.contains("layout checksum"));
//! ```

/// ParC front-end (lexer, parser, AST, printer).
pub use lassi_lang as lang;

/// Semantic analysis / the ParC "compiler".
pub use lassi_sema as sema;

/// Functional execution substrate (values, memory, evaluator, interpreter).
pub use lassi_runtime as runtime;

/// Simulated A100-class GPU.
pub use lassi_gpusim as gpusim;

/// Simulated OpenMP host + offload runtime.
pub use lassi_ompsim as ompsim;

/// Simulated LLM substrate (prompts, models, translation engine, faults).
pub use lassi_llm as llm;

/// Evaluation metrics (Sim-T, Sim-L, aggregates).
pub use lassi_metrics as metrics;

/// Observability core (metrics registry, structured tracing).
pub use lassi_obs as obs;

/// HeCBench-style benchmark applications.
pub use lassi_hecbench as hecbench;

/// The LASSI pipeline and experiment driver.
pub use lassi_core as pipeline;

/// Concurrent experiment service: job scheduler, scenario cache, artifact store.
pub use lassi_harness as harness;

/// HTTP/1.1 front end for the experiment service.
pub use lassi_server as server;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use lassi_core::{
        run_direction, run_scenario, run_table4, scenario_outcomes, Direction, Lassi,
        PipelineConfig, ScenarioStatus, TranslationRecord,
    };
    pub use lassi_harness::{
        ArtifactStore, Harness, HarnessOptions, Job, JobOutput, RunArtifact, RunManifest,
        ScenarioCache, SweepGrid,
    };
    pub use lassi_hecbench::{application, applications, run_application, Application, Machine};
    pub use lassi_lang::{parse, print_program, Dialect};
    pub use lassi_llm::{all_models, model_by_name, ChatModel, SimulatedLlm};
    pub use lassi_metrics::{sim_l, sim_t, AggregateStats};
    pub use lassi_runtime::{ExecutionReport, HostInterpreter, RunConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        assert_eq!(applications().len(), 10);
        assert_eq!(all_models().len(), 4);
        assert_eq!(Dialect::CudaLite.other(), Dialect::OmpLite);
    }
}
