//! Translate every HeCBench application in one direction with a single model
//! and print a Table VI/VII-style panel — the per-model slice of the paper's
//! evaluation.
//!
//!     cargo run --release --example translate_benchmark -- "Wizard Coder"

use lassi::pipeline::{direction_table, run_direction_with, Direction};
use lassi::prelude::*;

fn main() {
    let model_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Codestral".to_string());
    let model = model_by_name(&model_name).unwrap_or_else(|| {
        eprintln!("unknown model '{model_name}', falling back to Codestral");
        model_by_name("Codestral").unwrap()
    });
    let config = PipelineConfig::default();
    let records = run_direction_with(
        Direction::OmpToCuda,
        &config,
        std::slice::from_ref(&model),
        &applications(),
    );
    print!("{}", direction_table(Direction::OmpToCuda, &records));

    let stats = AggregateStats::from_outcomes(&scenario_outcomes(&records));
    println!("\n{stats}");
}
