//! Study of the self-correcting loop: drive the pipeline with progressively
//! less reliable simulated models and show how many correction iterations the
//! compile/execute loops need before the generated code runs — the behaviour
//! the paper's Self-corr column captures (including the pathological
//! 34-iteration Codestral case).
//!
//!     cargo run --release --example self_correction_study

use lassi::pipeline::{Direction, Lassi, PipelineConfig};
use lassi::prelude::*;

fn main() {
    let app = application("entropy").expect("benchmark exists");
    let config = PipelineConfig::default();

    println!(
        "{:<28} {:>14} {:>12} {:>12}",
        "model variant", "repair p", "status", "self-corr"
    );
    for (label, repair_success, repair_regression) in [
        ("reliable repairs", 0.95, 0.02),
        ("paper-like Codestral", 0.72, 0.12),
        ("unreliable repairs", 0.45, 0.30),
    ] {
        let mut spec = model_by_name("Codestral").unwrap();
        spec.profile.p_compile_fault = 1.0;
        spec.profile.p_repair_success = repair_success;
        spec.profile.p_repair_regression = repair_regression;
        let seed = config.model_scenario_seed(label, app.name, Direction::CudaToOmp);
        let llm = SimulatedLlm::with_seed(spec, seed);
        let mut pipeline = Lassi::new(llm, config.clone());
        let record = pipeline.translate_application(&app, Dialect::CudaLite);
        println!(
            "{:<28} {:>14.2} {:>12} {:>12}",
            label,
            repair_success,
            format!("{:?}", record.status),
            record.self_corrections
        );
    }
}
