//! Quickstart: run one LASSI translation scenario end to end and print what
//! the pipeline observed at each stage.
//!
//!     cargo run --release --example quickstart

use lassi::prelude::*;

fn main() {
    // 1. Pick a benchmark application and a model.
    let app = application("matrix-rotate").expect("benchmark exists");
    let model = model_by_name("GPT-4").expect("model exists");
    let config = PipelineConfig::default();

    // 2. Build the pipeline: a simulated LLM seeded per scenario plus the
    //    simulated A100 machine.
    let seed = config.model_scenario_seed(model.name, app.name, Direction::CudaToOmp);
    let llm = SimulatedLlm::with_seed(model, seed);
    let mut pipeline = Lassi::new(llm, config);

    // 3. Translate CUDA -> OpenMP with self-correction.
    let record = pipeline.translate_application(&app, Dialect::CudaLite);

    println!("application        : {}", record.application);
    println!("model              : {}", record.model);
    println!(
        "direction          : {} -> {}",
        record.source_dialect, record.target_dialect
    );
    println!("status             : {:?}", record.status);
    println!("self-corrections   : {}", record.self_corrections);
    println!("reference runtime  : {:.6} s", record.reference_runtime);
    if let Some(runtime) = record.generated_runtime {
        println!("generated runtime  : {runtime:.6} s");
        println!("ratio              : {:.3}", record.ratio.unwrap_or(0.0));
        println!(
            "Sim-T / Sim-L      : {:.2} / {:.2}",
            record.sim_t.unwrap_or(0.0),
            record.sim_l.unwrap_or(0.0)
        );
    }
    println!("\n--- generated code -------------------------------------------");
    println!("{}", record.generated_code.unwrap_or_default());
}
