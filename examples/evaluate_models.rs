//! Reproduce the §V headline comparison across all four models on a subset of
//! applications, in both directions — a faster version of the full 80-scenario
//! sweep that the `table6`/`table7` binaries run.
//!
//!     cargo run --release --example evaluate_models

use lassi::pipeline::{run_direction_with, scenario_outcomes, Direction};
use lassi::prelude::*;

fn main() {
    let config = PipelineConfig::default();
    let apps: Vec<Application> = ["matrix-rotate", "layout", "entropy", "bsearch"]
        .iter()
        .map(|n| application(n).expect("benchmark exists"))
        .collect();

    for direction in Direction::both() {
        println!(
            "=== {} ({} applications x 4 models) ===",
            direction.label(),
            apps.len()
        );
        let records = run_direction_with(direction, &config, &all_models(), &apps);
        for model in all_models() {
            let model_records: Vec<_> = records
                .iter()
                .filter(|r| r.model == model.name)
                .cloned()
                .collect();
            let stats = AggregateStats::from_outcomes(&scenario_outcomes(&model_records));
            println!(
                "  {:<20} success {:>5.1}%   zero-corrections {:>5.1}%   mean corr {:.2}",
                model.name,
                stats.success_rate * 100.0,
                stats.first_try_rate * 100.0,
                stats.mean_self_corrections
            );
        }
        println!();
    }
}
