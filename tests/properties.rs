//! Property-based tests over the core data structures and invariants:
//! printer/parser round-tripping, similarity-metric bounds, cost-model
//! monotonicity, and memory-model safety under random access patterns.

use proptest::prelude::*;

use lassi::lang::{parse, print_program, BinOp, Dialect, Expr};
use lassi::metrics::{sim_l, sim_t};
use lassi::runtime::{MemSpace, Memory, Value};

/// Generate random arithmetic expressions as source text.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (0i64..1000).prop_map(|v| v.to_string()),
            prop_oneof![
                Just("a".to_string()),
                Just("b".to_string()),
                Just("n".to_string())
            ],
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        (
            sub.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*")],
            sub,
        )
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
            .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated arithmetic expression embedded in a tiny program parses,
    /// and the printed form re-parses to the same printed form (printer is a
    /// fixed point after one round trip).
    #[test]
    fn printer_roundtrip_is_stable(expr in arb_expr(3)) {
        let src = format!("int main() {{ int a = 1; int b = 2; int n = 3; int x = {expr}; return x; }}");
        let program = parse(&src, Dialect::CudaLite).expect("generated program parses");
        let printed = print_program(&program);
        let reparsed = parse(&printed, Dialect::CudaLite).expect("printed program parses");
        prop_assert_eq!(printed, print_program(&reparsed));
    }

    /// Sim-T and Sim-L are bounded and reflexive. (Exact symmetry is *not* an
    /// invariant of Ratcliff–Obershelp when tie-breaking picks different
    /// blocks, so only boundedness is asserted for the reversed pair.)
    #[test]
    fn similarity_bounds(a in "[a-z ;{}()=+0-9\n]{0,200}", b in "[a-z ;{}()=+0-9\n]{0,200}") {
        let t = sim_t(&a, &b);
        let l = sim_l(&a, &b);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((0.0..=1.0).contains(&l));
        prop_assert!((0.0..=1.0).contains(&sim_t(&b, &a)));
        prop_assert!((sim_t(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((sim_l(&a, &a) - 1.0).abs() < 1e-9);
    }

    /// Stores followed by loads round-trip through typed buffers, and any
    /// index outside the allocation is rejected rather than wrapping.
    #[test]
    fn memory_model_is_safe(len in 1usize..64, writes in prop::collection::vec((0i64..128, -1000.0f64..1000.0), 0..32)) {
        let mem = Memory::new();
        let ptr = mem.alloc("buf", lassi::lang::Type::Double, len, MemSpace::Host);
        for (idx, value) in writes {
            let result = mem.store(&ptr, idx, &Value::Float(value), false, 1);
            if (idx as usize) < len && idx >= 0 {
                prop_assert!(result.is_ok());
                let read = mem.load(&ptr, idx, false, 1).unwrap();
                prop_assert_eq!(read, Value::Float(value));
            } else {
                prop_assert!(result.is_err());
            }
        }
    }

    /// The expression evaluator agrees with native Rust arithmetic on
    /// randomly generated integer expressions (no overflow cases generated).
    #[test]
    fn evaluator_matches_reference_arithmetic(x in -1000i64..1000, y in -1000i64..1000, z in 1i64..100) {
        let src = format!(
            "int main() {{ long x = {x}; long y = {y}; long z = {z}; long r = (x + y) * 2 - x / z + (x % z); printf(\"%ld\\n\", r); return 0; }}"
        );
        let expected = (x + y) * 2 - x / z + (x % z);
        let report = lassi::hecbench::run_source(&src, Dialect::CudaLite).expect("runs");
        prop_assert_eq!(report.stdout.trim(), expected.to_string());
    }
}

/// Non-proptest sanity check that the Expr helpers compose as documented.
#[test]
fn expr_helpers_build_expected_shapes() {
    let e = Expr::bin(BinOp::Add, Expr::int(1), Expr::ident("n"));
    match e {
        Expr::Binary { op: BinOp::Add, .. } => {}
        other => panic!("unexpected shape {other:?}"),
    }
}
