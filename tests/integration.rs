//! Cross-crate integration tests: front-end → compiler → simulators → LLM →
//! pipeline, exercised through the public `lassi` façade the way a downstream
//! user would.

use lassi::pipeline::{run_direction_with, scenario_outcomes, Direction, Lassi, PipelineConfig};
use lassi::prelude::*;

/// A "perfect" model variant used when a test needs a deterministic success.
fn perfect(name: &str) -> SimulatedLlm {
    let mut spec = model_by_name(name).expect("model exists");
    spec.profile.p_compile_fault = 0.0;
    spec.profile.p_runtime_fault = 0.0;
    spec.profile.p_semantic_fault = 0.0;
    spec.profile.p_perf_regression = 0.0;
    spec.profile.p_repair_regression = 0.0;
    SimulatedLlm::with_seed(spec, 99)
}

#[test]
fn every_reference_application_runs_in_both_dialects_with_matching_output() {
    for app in applications() {
        let cuda = run_application(&app, Dialect::CudaLite)
            .unwrap_or_else(|e| panic!("{} CUDA reference failed: {e}", app.name));
        let omp = run_application(&app, Dialect::OmpLite)
            .unwrap_or_else(|e| panic!("{} OpenMP reference failed: {e}", app.name));
        assert_eq!(cuda.stdout, omp.stdout, "output mismatch for {}", app.name);
        assert!(cuda.simulated_seconds > 0.0 && omp.simulated_seconds > 0.0);
    }
}

#[test]
fn table_iv_shape_matches_the_paper() {
    // The paper's Table IV: jacobi and dense-embedding are dramatically slower
    // in OpenMP, bsearch and colorwheel are faster in OpenMP.
    let runtime = |name: &str, dialect| {
        run_application(&application(name).unwrap(), dialect)
            .unwrap()
            .simulated_seconds
    };
    assert!(runtime("jacobi", Dialect::OmpLite) > 3.0 * runtime("jacobi", Dialect::CudaLite));
    assert!(
        runtime("dense-embedding", Dialect::OmpLite)
            > 2.0 * runtime("dense-embedding", Dialect::CudaLite)
    );
    assert!(runtime("bsearch", Dialect::OmpLite) < runtime("bsearch", Dialect::CudaLite));
    assert!(runtime("colorwheel", Dialect::OmpLite) < runtime("colorwheel", Dialect::CudaLite));
}

#[test]
fn perfect_model_translates_every_application_cuda_to_openmp() {
    // One timed run per execution keeps this sweep fast in debug builds.
    let config = PipelineConfig {
        timing_runs: 1,
        ..PipelineConfig::default()
    };
    for app in applications() {
        let mut pipeline = Lassi::new(perfect("GPT-4"), config.clone());
        let record = pipeline.translate_application(&app, Dialect::CudaLite);
        assert_eq!(
            record.status,
            ScenarioStatus::Success,
            "{} CUDA->OpenMP failed: {:?}\n{}",
            app.name,
            record.status,
            record.generated_code.unwrap_or_default()
        );
        assert_eq!(record.self_corrections, 0);
    }
}

#[test]
fn perfect_model_translates_every_application_openmp_to_cuda() {
    let config = PipelineConfig {
        timing_runs: 1,
        ..PipelineConfig::default()
    };
    for app in applications() {
        let mut pipeline = Lassi::new(perfect("GPT-4"), config.clone());
        let record = pipeline.translate_application(&app, Dialect::OmpLite);
        assert_eq!(
            record.status,
            ScenarioStatus::Success,
            "{} OpenMP->CUDA failed: {:?}\n{}",
            app.name,
            record.status,
            record.generated_code.unwrap_or_default()
        );
        assert_eq!(record.self_corrections, 0);
    }
}

#[test]
fn generated_code_is_similar_but_not_identical_to_the_reference() {
    let app = application("layout").unwrap();
    let mut pipeline = Lassi::new(perfect("GPT-4"), PipelineConfig::default());
    let record = pipeline.translate_application(&app, Dialect::CudaLite);
    let sim_t = record.sim_t.expect("successful translation has Sim-T");
    let sim_l = record.sim_l.expect("successful translation has Sim-L");
    assert!(sim_t > 0.3 && sim_t <= 1.0);
    assert!(sim_l > 0.1 && sim_l <= 1.0);
    let generated = record.generated_code.unwrap();
    assert_ne!(generated.trim(), app.omp_source.trim());
}

#[test]
fn faulty_models_produce_na_rows_and_self_corrections() {
    // A model that always produces an unrecoverable semantic fault must end
    // in an N/A outcome, never in a false success.
    let mut spec = model_by_name("DeepSeek Coder v2").unwrap();
    spec.profile.p_compile_fault = 0.0;
    spec.profile.p_runtime_fault = 0.0;
    spec.profile.p_semantic_fault = 1.0;
    spec.profile.p_perf_regression = 0.0;
    let llm = SimulatedLlm::with_seed(spec, 17);
    let app = application("atomicCost").unwrap();
    let mut pipeline = Lassi::new(llm, PipelineConfig::default());
    let record = pipeline.translate_application(&app, Dialect::CudaLite);
    assert!(
        record.status.is_na(),
        "semantic fault must not count as success"
    );
    assert!(record.ratio.is_none());
}

#[test]
fn small_two_model_sweep_produces_paper_style_statistics() {
    let config = PipelineConfig::default();
    let apps: Vec<Application> = ["layout", "entropy"]
        .iter()
        .map(|n| application(n).unwrap())
        .collect();
    let models = vec![
        model_by_name("GPT-4").unwrap(),
        model_by_name("Codestral").unwrap(),
    ];
    let records = run_direction_with(Direction::CudaToOmp, &config, &models, &apps);
    assert_eq!(records.len(), 4);
    let stats = AggregateStats::from_outcomes(&scenario_outcomes(&records));
    assert!(stats.success_rate >= 0.0 && stats.success_rate <= 1.0);
    assert_eq!(stats.total, 4);
}

#[test]
fn pipeline_records_are_reproducible_for_a_fixed_seed() {
    let config = PipelineConfig::default();
    let app = application("pathfinder").unwrap();
    let run = || {
        let seed = config.model_scenario_seed("Codestral", app.name, Direction::OmpToCuda);
        let llm = SimulatedLlm::with_seed(model_by_name("Codestral").unwrap(), seed);
        let mut pipeline = Lassi::new(llm, config.clone());
        pipeline.translate_application(&app, Dialect::OmpLite)
    };
    let a = run();
    let b = run();
    assert_eq!(a.status, b.status);
    assert_eq!(a.self_corrections, b.self_corrections);
    assert_eq!(a.generated_code, b.generated_code);
    assert_eq!(a.generated_runtime, b.generated_runtime);
}
