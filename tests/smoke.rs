//! Smoke test backing the umbrella crate's front-page doctest claim
//! (`src/lib.rs`): running the `layout` application under
//! `Dialect::CudaLite` prints a `layout checksum` line. The doctest only runs
//! under `cargo test --doc`; this integration test pins the same behaviour in
//! the ordinary test pass so a regression cannot hide behind a skipped
//! doctest run.

use lassi::prelude::*;

#[test]
fn layout_reference_run_prints_a_checksum_line() {
    let app = application("layout").expect("the layout benchmark exists");
    let report = run_application(&app, Dialect::CudaLite).expect("reference run succeeds");
    assert_eq!(report.exit_code, 0, "stdout was: {}", report.stdout);
    let checksum_line = report
        .stdout
        .lines()
        .find(|l| l.contains("layout checksum"))
        .unwrap_or_else(|| panic!("no 'layout checksum' line in stdout: {}", report.stdout));
    assert!(
        checksum_line
            .split_whitespace()
            .last()
            .is_some_and(|v| v.parse::<f64>().is_ok()),
        "checksum line does not end in a number: {checksum_line}"
    );
    assert!(
        report.simulated_seconds > 0.0,
        "reference run reports no simulated time"
    );
}

#[test]
fn both_dialect_references_agree_on_stdout() {
    let app = application("layout").expect("the layout benchmark exists");
    let cuda = run_application(&app, Dialect::CudaLite).expect("CUDA reference run");
    let omp = run_application(&app, Dialect::OmpLite).expect("OpenMP reference run");
    assert_eq!(
        cuda.stdout, omp.stdout,
        "reference dialects must be functionally equivalent"
    );
}
